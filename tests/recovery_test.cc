// Recovery-determinism tests for the supervised parallel runtime
// (DESIGN.md §12): a run with injected worker fail-stops — recovered via
// checkpoint restore + ring replay — must produce answers *bit-identical*
// to the fault-free run, with the telemetry conservation identity intact
// (tuples_in == tuples_out + in_flight, admitted + dropped == pushed).
// Also covers the backpressure policy matrix and, under a
// -DSLICK_FAULT_INJECTION=ON build (the CI chaos job), the seeded
// fault-schedule points in the ring and checkpoint paths. Suite names
// contain "Recovery" so the TSan CI leg's -R filter picks them up, and the
// randomized trials live in a "DifferentialFuzz" suite so the nightly and
// chaos fuzz legs scale them via SLICK_FUZZ_TRIALS.

#include <cstdint>
#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/slick_deque_inv.h"
#include "core/slick_deque_noninv.h"
#include "ops/arith.h"
#include "ops/minmax.h"
#include "ops/string_ops.h"
#include "runtime/fault.h"
#include "runtime/parallel_engine.h"
#include "runtime/shm/shm_ring.h"
#include "stream/synthetic.h"
#include "util/rng.h"
#include "window/naive.h"

namespace slick {
namespace {

using runtime::Backpressure;
using runtime::KillPoint;
using runtime::ParallelShardedEngine;

/// Trial count scaled by SLICK_FUZZ_TRIALS (the nightly/chaos CI jobs set
/// it for longer exploration).
int GetTrials(int base) {
  if (const char* env = std::getenv("SLICK_FUZZ_TRIALS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return base;
}

std::vector<int64_t> IntStream(std::size_t count, uint64_t seed) {
  stream::SyntheticSensorSource src(seed);
  const std::vector<double> energy = src.MakeEnergySeries(count, 0);
  std::vector<int64_t> out;
  out.reserve(count);
  for (double v : energy) out.push_back(static_cast<int64_t>(v * 1024.0));
  return out;
}

/// Asserts the per-shard conservation identity at a quiescent cut.
template <typename Engine>
void ExpectConservation(const Engine& eng) {
  const telemetry::RuntimeSnapshot snap = eng.snapshot();
  for (std::size_t i = 0; i < snap.shards.size(); ++i) {
    const telemetry::ShardSnapshot& s = snap.shards[i];
    EXPECT_EQ(s.tuples_in, s.tuples_out + s.in_flight) << "shard " << i;
  }
  const auto stats = eng.stats();
  EXPECT_EQ(stats.processed + snap.total_in_flight(), stats.admitted);
}

/// The core differential: the same stream through a fault-free supervised
/// engine, a supervised engine with one armed fail-stop per shard, and a
/// NaiveWindow oracle. Answers must agree exactly at every checked slide
/// barrier, and the chaos engine must actually have died and recovered.
template <typename Agg>
void RunKillDifferential(std::size_t window, std::size_t shards,
                         uint64_t seed, KillPoint point, uint64_t nth_batch) {
  using Op = typename Agg::op_type;
  const typename ParallelShardedEngine<Agg>::Options opts = {
      .ring_capacity = 16,
      .batch = 3,
      .backpressure = Backpressure::kBlock,
      .checkpoint_interval = 4};
  ParallelShardedEngine<Agg> clean(window, shards, opts);
  ParallelShardedEngine<Agg> chaos(window, shards, opts);
  window::NaiveWindow<Op> oracle(window);
  for (std::size_t i = 0; i < shards; ++i) {
    chaos.InjectWorkerKill(i, point, nth_batch);
  }

  const std::vector<int64_t> stream = IntStream(220 * shards, seed);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const auto v = Op::lift(stream[i]);
    clean.push(v);
    chaos.push(v);
    oracle.slide(v);
    // Check at periodic slide barriers (every tuple would be quadratic).
    if ((i + 1) % (16 * shards) == 0 && i + 1 >= window) {
      const auto expected = oracle.query();
      ASSERT_EQ(clean.query(), expected) << "clean: i=" << i;
      ASSERT_EQ(chaos.query(), expected) << "chaos: i=" << i;
    }
  }
  clean.stop();
  chaos.stop();
  ASSERT_EQ(chaos.query(), clean.query());

  const auto clean_stats = clean.stats();
  const auto chaos_stats = chaos.stats();
  EXPECT_EQ(clean_stats.restarts, 0u);
  EXPECT_EQ(chaos_stats.restarts, shards);  // every armed kill fired once
  EXPECT_EQ(chaos_stats.admitted, stream.size());
  EXPECT_EQ(chaos_stats.processed, stream.size());
  EXPECT_EQ(chaos_stats.dropped, 0u);
  ExpectConservation(clean);
  ExpectConservation(chaos);
  // The recovered run replayed the abandoned span and took checkpoints.
  const telemetry::RuntimeSnapshot snap = chaos.snapshot();
  EXPECT_EQ(snap.total_restarts(), shards);
  for (const telemetry::ShardSnapshot& s : snap.shards) {
    EXPECT_GT(s.checkpoints, 0u);
  }
}

// The ISSUE's acceptance grid: shard counts {1, 2, 4} x >= 3 distinct
// schedule points x both kill sides of the slide.
class RecoverySweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, uint64_t, int>> {
};
INSTANTIATE_TEST_SUITE_P(
    Grid, RecoverySweep,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 4),
                       ::testing::Values<uint64_t>(1, 5, 13),
                       ::testing::Values(0, 1)),
    [](const auto& tpi) {
      std::string name("s");
      name += std::to_string(std::get<0>(tpi.param));
      name += "b";
      name += std::to_string(std::get<1>(tpi.param));
      name += std::get<2>(tpi.param) == 0 ? "before" : "after";
      return name;
    });

TEST_P(RecoverySweep, SumRecoversBitIdentical) {
  const auto [shards, nth, point] = GetParam();
  RunKillDifferential<core::SlickDequeInv<ops::SumInt>>(
      8 * shards, shards, 21,
      point == 0 ? KillPoint::kBeforeSlide : KillPoint::kAfterSlide, nth);
}

TEST_P(RecoverySweep, MaxRecoversBitIdentical) {
  const auto [shards, nth, point] = GetParam();
  RunKillDifferential<core::SlickDequeNonInv<ops::MaxInt>>(
      8 * shards, shards, 22,
      point == 0 ? KillPoint::kBeforeSlide : KillPoint::kAfterSlide, nth);
}

// Non-commutative ops are admitted at shards == 1 (no combine reorders
// anything), where recovery must work like any other aggregator.
TEST(RecoveryTest, ArgMaxSingleShardRecovers) {
  using Agg = core::SlickDequeNonInv<ops::ArgMax>;
  const typename ParallelShardedEngine<Agg>::Options opts = {
      .ring_capacity = 16,
      .batch = 3,
      .backpressure = Backpressure::kBlock,
      .checkpoint_interval = 4};
  ParallelShardedEngine<Agg> clean(8, 1, opts);
  ParallelShardedEngine<Agg> chaos(8, 1, opts);
  chaos.InjectWorkerKill(0, KillPoint::kAfterSlide, 3);
  const std::vector<int64_t> stream = IntStream(300, 23);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const ops::ArgSample v{static_cast<double>(stream[i]), i};
    clean.push(v);
    chaos.push(v);
  }
  clean.stop();
  chaos.stop();
  const ops::ArgSample a = clean.query();
  const ops::ArgSample b = chaos.query();
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(chaos.stats().restarts, 1u);
  ExpectConservation(chaos);
}

// String-valued aggregates exercise the non-POD checkpoint path end to end
// (length-prefixed serde through ring replay and restore).
TEST(RecoveryTest, AlphaMaxStringStateRecovers) {
  using Agg = core::SlickDequeNonInv<ops::AlphaMax>;
  const typename ParallelShardedEngine<Agg>::Options opts = {
      .ring_capacity = 16,
      .batch = 3,
      .backpressure = Backpressure::kBlock,
      .checkpoint_interval = 4};
  ParallelShardedEngine<Agg> clean(6, 2, opts);
  ParallelShardedEngine<Agg> chaos(6, 2, opts);
  chaos.InjectWorkerKill(0, KillPoint::kBeforeSlide, 2);
  chaos.InjectWorkerKill(1, KillPoint::kAfterSlide, 4);
  const char* words[] = {"pear",  "apple", "quince", "fig",   "mango",
                         "grape", "kiwi",  "plum",   "peach", "lime"};
  util::SplitMix64 rng(24);
  for (int i = 0; i < 400; ++i) {
    const std::string v(words[rng.NextBounded(10)]);
    clean.push(v);
    chaos.push(v);
  }
  clean.stop();
  chaos.stop();
  EXPECT_EQ(chaos.query(), clean.query());
  EXPECT_EQ(chaos.stats().restarts, 2u);
  ExpectConservation(chaos);
}

// Supervision with no faults must be answer-invisible: the checkpointing
// engine and the PR 4 fast-path engine agree on every barrier.
TEST(RecoveryTest, SupervisionWithoutFaultsIsAnswerInvisible) {
  using Agg = core::SlickDequeInv<ops::SumInt>;
  ParallelShardedEngine<Agg> fast(
      16, 4, {.ring_capacity = 32, .batch = 4});
  ParallelShardedEngine<Agg> supervised(
      16, 4,
      {.ring_capacity = 32, .batch = 4, .checkpoint_interval = 8});
  const std::vector<int64_t> stream = IntStream(1000, 25);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    fast.push(stream[i]);
    supervised.push(stream[i]);
    if ((i + 1) % 64 == 0 && i + 1 >= 16) {
      ASSERT_EQ(supervised.query(), fast.query()) << "i=" << i;
    }
  }
  fast.stop();
  supervised.stop();
  EXPECT_EQ(supervised.query(), fast.query());
  EXPECT_EQ(supervised.stats().restarts, 0u);
  ExpectConservation(supervised);
  const telemetry::RuntimeSnapshot snap = supervised.snapshot();
  EXPECT_GT(snap.shards[0].checkpoints, 0u);
  EXPECT_STREQ(snap.backpressure, "block");
  EXPECT_EQ(snap.checkpoint_interval, 8u);
}

// Multiple sequential kills on the same shard: recovery must compose (each
// restart replays from the latest checkpoint, not the first).
TEST(RecoveryTest, RepeatedKillsOnOneShardCompose) {
  using Agg = core::SlickDequeInv<ops::SumInt>;
  const typename ParallelShardedEngine<Agg>::Options opts = {
      .ring_capacity = 16,
      .batch = 3,
      .backpressure = Backpressure::kBlock,
      .checkpoint_interval = 4};
  ParallelShardedEngine<Agg> clean(8, 2, opts);
  ParallelShardedEngine<Agg> chaos(8, 2, opts);
  const std::vector<int64_t> stream = IntStream(600, 26);
  chaos.InjectWorkerKill(0, KillPoint::kBeforeSlide, 2);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    clean.push(stream[i]);
    chaos.push(stream[i]);
    if (i == 200) {
      // The first kill has certainly fired by now (its ordinal is 2);
      // re-arm a later one on the same shard, plus one on the other side.
      ASSERT_EQ(chaos.query(), clean.query());
      chaos.InjectWorkerKill(0, KillPoint::kAfterSlide, 40);
      chaos.InjectWorkerKill(1, KillPoint::kBeforeSlide, 45);
    }
  }
  clean.stop();
  chaos.stop();
  EXPECT_EQ(chaos.query(), clean.query());
  EXPECT_EQ(chaos.stats().restarts, 3u);
  ExpectConservation(chaos);
}

// The supervised-recovery grid crossed with the crash-robust shm ring
// (DESIGN.md §17): a worker fail-stop while lease producers are pushing
// directly into the shard rings must recover answer-identically to a
// fault-free engine fed the same interleaving, and a graceful detach
// must leave the lease table untouched by the reaper (no reclaims, no
// fences, no tombstones). Conservation is deliberately NOT asserted:
// tuples_in counts only the router's pushes, and lease traffic lands in
// tuples_out without it.
TEST(RecoveryTest, ShmRingWorkerKillWithLeaseProducersRecovers) {
  using Agg = core::SlickDequeInv<ops::SumInt>;
  using Engine = ParallelShardedEngine<Agg, runtime::ShmRing>;
  using Lease = runtime::ShmRing<int64_t>::LeaseProducer;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}}) {
    const typename Engine::Options opts = {
        .ring_capacity = 16,
        .batch = 3,
        .backpressure = Backpressure::kBlock,
        .checkpoint_interval = 4,
        .lease_ns = uint64_t{3'600} * 1'000'000'000};  // never expires here
    Engine clean(8 * shards, shards, opts);
    Engine chaos(8 * shards, shards, opts);
    for (std::size_t i = 0; i < shards; ++i) {
      chaos.InjectWorkerKill(
          i, i % 2 == 0 ? KillPoint::kBeforeSlide : KillPoint::kAfterSlide,
          5 + i);
    }
    std::vector<Lease> clean_leases;
    std::vector<Lease> chaos_leases;
    for (std::size_t i = 0; i < shards; ++i) {
      clean_leases.push_back(clean.shard_ring(i).AttachProducer());
      chaos_leases.push_back(chaos.shard_ring(i).AttachProducer());
    }
    // Identical interleaving into both engines from one thread: the router
    // stream plus a lease-pushed side channel every 7th tuple, so worker
    // replay after the kill covers lease-landed slots too.
    const auto side_push = [](Lease& lease, int64_t v) {
      for (;;) {
        std::size_t pushed = 0;
        const auto r = lease.TryPush(&v, 1, &pushed);
        if (pushed == 1) return;
        // kFull while the worker drains is the only retryable outcome;
        // kFenced/kClosed here would mean the reaper or shutdown got a
        // live, heartbeating producer — a protocol failure.
        ASSERT_EQ(r, Lease::Result::kFull);
      }
    };
    const std::vector<int64_t> stream = IntStream(220 * shards, 27);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      clean.push(stream[i]);
      chaos.push(stream[i]);
      if (i % 7 == 0) {
        const std::size_t shard = (i / 7) % shards;
        const auto v = static_cast<int64_t>(1000 + i);
        side_push(clean_leases[shard], v);
        side_push(chaos_leases[shard], v);
      }
    }
    for (std::size_t i = 0; i < shards; ++i) {
      clean_leases[i].Detach();
      chaos_leases[i].Detach();
    }
    clean.stop();
    chaos.stop();
    EXPECT_EQ(chaos.query(), clean.query()) << "shards=" << shards;
    EXPECT_EQ(clean.stats().restarts, 0u);
    EXPECT_EQ(chaos.stats().restarts, shards);
    for (std::size_t i = 0; i < shards; ++i) {
      const runtime::ShmLeaseStats ls = chaos.shard_ring(i).lease_stats();
      EXPECT_EQ(ls.leases_reclaimed, 0u) << "shard " << i;
      EXPECT_EQ(ls.zombie_fences, 0u) << "shard " << i;
      EXPECT_EQ(ls.slots_tombstoned, 0u) << "shard " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Backpressure policy matrix (DESIGN.md §12.4). A dead, unsupervised worker
// makes its ring a black hole — the sharpest way to force each policy's
// full-ring edge.
// ---------------------------------------------------------------------------

TEST(BackpressureTest, DeadlineExpiryShedsAndCounts) {
  using Agg = core::SlickDequeInv<ops::SumInt>;
  ParallelShardedEngine<Agg> eng(
      4, 1,
      {.ring_capacity = 8,
       .batch = 2,
       .backpressure = Backpressure::kBlockWithDeadline,
       .deadline_ns = 200'000});
  // Kill the only worker immediately: nothing drains, every flush after
  // the ring fills must expire its deadline and shed.
  eng.InjectWorkerKill(0, KillPoint::kBeforeSlide, 1);
  for (int64_t i = 0; i < 64; ++i) eng.push(1);
  eng.flush();
  const telemetry::RuntimeSnapshot snap = eng.snapshot();
  EXPECT_GT(snap.shards[0].deadline_expiries, 0u);
  EXPECT_GT(snap.total_dropped(), 0u);
  const auto stats = eng.stats();
  EXPECT_EQ(stats.admitted + stats.dropped, 64u);
  EXPECT_STREQ(snap.backpressure, "block-with-deadline");
  eng.stop();
}

TEST(BackpressureTest, ShedOldestNeverBlocksAndKeepsFreshest) {
  using Agg = core::SlickDequeInv<ops::SumInt>;
  ParallelShardedEngine<Agg> eng(
      4, 1,
      {.ring_capacity = 8,
       .batch = 2,
       .backpressure = Backpressure::kShedOldest});
  eng.InjectWorkerKill(0, KillPoint::kBeforeSlide, 1);
  for (int64_t i = 0; i < 200; ++i) eng.push(i);
  eng.flush();  // returns without blocking despite the dead worker
  const auto stats = eng.stats();
  EXPECT_EQ(stats.admitted + stats.dropped, 200u);
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_LE(stats.admitted, 8u + 2u);  // bounded by ring + claimed batch
  eng.stop();
}

TEST(BackpressureTest, ErrorPolicyDiesOnFullRing) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  using Agg = core::SlickDequeInv<ops::SumInt>;
  EXPECT_DEATH(
      {
        ParallelShardedEngine<Agg> eng(
            4, 1,
            {.ring_capacity = 4,
             .batch = 1,
             .backpressure = Backpressure::kError});
        eng.InjectWorkerKill(0, KillPoint::kBeforeSlide, 1);
        for (int64_t i = 0; i < 64; ++i) eng.push(1);
        eng.flush();
      },
      "kError");
}

TEST(BackpressureTest, MultiShardNonCommutativeDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  using Engine = ParallelShardedEngine<core::SlickDequeNonInv<ops::ArgMax>>;
  EXPECT_DEATH(Engine(8, 2), "commutative");
}

TEST(BackpressureTest, SupervisionRequiresCheckpointableInterval) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  using Engine = ParallelShardedEngine<core::SlickDequeInv<ops::SumInt>>;
  // Interval larger than half the ring capacity can wedge on unreleased
  // slots before a checkpoint is ever reachable.
  EXPECT_DEATH(Engine(8, 1, {.ring_capacity = 8, .checkpoint_interval = 100}),
               "half the ring capacity");
}

// ---------------------------------------------------------------------------
// Randomized recovery fuzz — named "DifferentialFuzz" so the nightly and
// chaos CI legs pick it up and scale it with SLICK_FUZZ_TRIALS.
// ---------------------------------------------------------------------------

TEST(DifferentialFuzzTest, RecoveryUnderRandomKillsMatchesOracle) {
  const int trials = GetTrials(6);
  util::SplitMix64 rng(0xFEEDFACE);
  for (int t = 0; t < trials; ++t) {
    const std::size_t shards = std::size_t{1} << rng.NextBounded(3);  // 1/2/4
    const std::size_t window = shards * (1 + rng.NextBounded(8));
    const std::size_t batch = 1 + rng.NextBounded(4);
    const std::size_t interval = 2 + rng.NextBounded(7);  // <= 8 = cap/2
    using Agg = core::SlickDequeInv<ops::SumInt>;
    const typename ParallelShardedEngine<Agg>::Options opts = {
        .ring_capacity = 16,
        .batch = batch,
        .backpressure = Backpressure::kBlock,
        .checkpoint_interval = interval};
    ParallelShardedEngine<Agg> chaos(window, shards, opts);
    window::NaiveWindow<ops::SumInt> oracle(window);
    std::size_t expected_restarts = 0;
    for (std::size_t i = 0; i < shards; ++i) {
      if (rng.NextBounded(4) != 0) {  // most shards get a kill
        const KillPoint point = rng.NextBounded(2) == 0
                                    ? KillPoint::kBeforeSlide
                                    : KillPoint::kAfterSlide;
        chaos.InjectWorkerKill(i, point, 1 + rng.NextBounded(20));
        ++expected_restarts;
      }
    }
    const std::vector<int64_t> stream =
        IntStream(150 * shards + rng.NextBounded(100), 1000 + t);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      chaos.push(stream[i]);
      oracle.slide(stream[i]);
      if ((i + 1) % (32 * shards) == 0 && i + 1 >= window) {
        ASSERT_EQ(chaos.query(), oracle.query())
            << "trial=" << t << " i=" << i << " shards=" << shards
            << " window=" << window << " batch=" << batch
            << " interval=" << interval;
      }
    }
    chaos.stop();
    ASSERT_EQ(chaos.query(), oracle.query()) << "trial=" << t;
    ASSERT_EQ(chaos.stats().restarts, expected_restarts) << "trial=" << t;
    ExpectConservation(chaos);
  }
}

// ---------------------------------------------------------------------------
// Seeded fault-injection schedules (compiled only under
// -DSLICK_FAULT_INJECTION=ON; the CI chaos job runs these, the default
// build skips them).
// ---------------------------------------------------------------------------

class FaultInjectionRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!runtime::fault::Enabled()) {
      GTEST_SKIP() << "build with -DSLICK_FAULT_INJECTION=ON";
    }
    runtime::fault::DisarmAll();
  }
  void TearDown() override { runtime::fault::DisarmAll(); }
};

using FI = runtime::fault::Point;

/// One supervised engine under an armed fault schedule vs a NaiveWindow
/// oracle; answers must match and accounting must conserve.
void RunFaultSchedule(uint64_t seed) {
  using Agg = core::SlickDequeInv<ops::SumInt>;
  ParallelShardedEngine<Agg> eng(
      8, 2,
      {.ring_capacity = 16,
       .batch = 3,
       .backpressure = Backpressure::kBlock,
       .checkpoint_interval = 4});
  window::NaiveWindow<ops::SumInt> oracle(8);
  const std::vector<int64_t> stream = IntStream(500, seed);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    eng.push(stream[i]);
    oracle.slide(stream[i]);
    if ((i + 1) % 50 == 0 && i + 1 >= 8) {
      ASSERT_EQ(eng.query(), oracle.query()) << "i=" << i;
    }
  }
  eng.stop();
  EXPECT_EQ(eng.query(), oracle.query());
  const auto stats = eng.stats();
  EXPECT_EQ(stats.admitted, stream.size());
  EXPECT_EQ(stats.processed, stream.size());
  ExpectConservation(eng);
}

TEST_F(FaultInjectionRecoveryTest, SeededWorkerKillsRecover) {
  runtime::fault::Arm(FI::kWorkerKillBeforeSlide, 0, 7);
  runtime::fault::Arm(FI::kWorkerKillAfterSlide, 1, 11);
  RunFaultSchedule(31);
  EXPECT_EQ(runtime::fault::FiredCount(FI::kWorkerKillBeforeSlide), 1u);
  EXPECT_EQ(runtime::fault::FiredCount(FI::kWorkerKillAfterSlide), 1u);
}

TEST_F(FaultInjectionRecoveryTest, PublishDelayIsAnswerInvisible) {
  runtime::fault::Arm(FI::kPublishDelay, 0, 5);
  runtime::fault::Arm(FI::kPublishDelay, 1, 9);
  RunFaultSchedule(32);
  EXPECT_EQ(runtime::fault::FiredCount(FI::kPublishDelay), 2u);
}

TEST_F(FaultInjectionRecoveryTest, SpuriousRingFullIsRetried) {
  runtime::fault::Arm(FI::kRingSpuriousFull, 0, 3);
  runtime::fault::Arm(FI::kRingSpuriousFull, 1, 13);
  RunFaultSchedule(33);
  EXPECT_GE(runtime::fault::FiredCount(FI::kRingSpuriousFull), 2u);
}

TEST_F(FaultInjectionRecoveryTest, CorruptCheckpointIsDiscardedNotRestored) {
  using Agg = core::SlickDequeInv<ops::SumInt>;
  // Corrupt the 2nd checkpoint on shard 0, then kill the worker later: the
  // corrupt frame must have been rejected at write time (counted as a
  // failure), so recovery restores from a *good* frame and answers match.
  runtime::fault::Arm(FI::kCheckpointCorrupt, 0, 2);
  ParallelShardedEngine<Agg> eng(
      8, 2,
      {.ring_capacity = 16,
       .batch = 3,
       .backpressure = Backpressure::kBlock,
       .checkpoint_interval = 4});
  window::NaiveWindow<ops::SumInt> oracle(8);
  eng.InjectWorkerKill(0, KillPoint::kBeforeSlide, 12);
  const std::vector<int64_t> stream = IntStream(500, 34);
  for (int64_t v : stream) {
    eng.push(v);
    oracle.slide(v);
  }
  eng.stop();
  EXPECT_EQ(eng.query(), oracle.query());
  EXPECT_EQ(runtime::fault::FiredCount(FI::kCheckpointCorrupt), 1u);
  const telemetry::RuntimeSnapshot snap = eng.snapshot();
  EXPECT_EQ(snap.shards[0].checkpoint_failures, 1u);
  EXPECT_EQ(snap.shards[0].worker_restarts, 1u);
  ExpectConservation(eng);
}

TEST_F(FaultInjectionRecoveryTest, CheckpointAllocFailureIsRetried) {
  runtime::fault::Arm(FI::kCheckpointAllocFail, 0, 1);
  runtime::fault::Arm(FI::kCheckpointAllocFail, 1, 2);
  RunFaultSchedule(35);
  EXPECT_EQ(runtime::fault::FiredCount(FI::kCheckpointAllocFail), 2u);
}

}  // namespace
}  // namespace slick
