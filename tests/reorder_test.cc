// ReorderBuffer tests: exact-order reconstruction of bounded-displacement
// shuffles, straggler rejection, duplicate detection, and end-to-end
// integration with the ACQ engine (§3.1: slightly out-of-order arrivals
// must not change answers).

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/slick_deque_inv.h"
#include "engine/acq_engine.h"
#include "ops/arith.h"
#include "stream/reorder.h"
#include "util/rng.h"

namespace slick::stream {
namespace {

/// Shuffles `values` with bounded displacement: elements are permuted only
/// within consecutive blocks of `displacement + 1`, so no element arrives
/// more than `displacement` positions from its slot (a bounded-lateness
/// stream per §3.1).
std::vector<std::pair<uint64_t, int>> BoundedShuffle(
    const std::vector<int>& values, uint64_t displacement, uint64_t seed) {
  std::vector<std::pair<uint64_t, int>> out;
  out.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out.emplace_back(i, values[i]);
  }
  util::SplitMix64 rng(seed);
  const std::size_t block = static_cast<std::size_t>(displacement) + 1;
  for (std::size_t lo = 0; lo < out.size(); lo += block) {
    const std::size_t hi = std::min(lo + block, out.size());
    for (std::size_t i = hi - 1; i > lo; --i) {  // Fisher-Yates per block
      std::swap(out[i], out[lo + rng.NextBounded(i - lo + 1)]);
    }
  }
  return out;
}

TEST(ReorderBufferTest, InOrderPassesThrough) {
  ReorderBuffer<int> buf(4);
  std::vector<uint64_t> seen;
  for (uint64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(buf.Offer(i, static_cast<int>(i),
                        [&](uint64_t seq, int) { seen.push_back(seq); }),
              Admission::kAdmitted);
  }
  buf.Flush([&](uint64_t seq, int) { seen.push_back(seq); });
  ASSERT_EQ(seen.size(), 20u);
  for (uint64_t i = 0; i < 20; ++i) EXPECT_EQ(seen[i], i);
}

TEST(ReorderBufferTest, ZeroHorizonIsPureInOrderPassThrough) {
  // horizon=0 means no tolerated lateness: every in-order element is final
  // the moment it arrives, and anything else is late or duplicate.
  ReorderBuffer<int> buf(0);
  std::vector<uint64_t> seen;
  auto emit = [&](uint64_t seq, int) { seen.push_back(seq); };
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(buf.Offer(i, static_cast<int>(i), emit), Admission::kAdmitted);
    EXPECT_EQ(buf.pending(), 0u) << "horizon=0 never holds elements back";
  }
  EXPECT_EQ(seen.size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) EXPECT_EQ(seen[i], i);
  // An already-released element is a duplicate (within the dedup window)...
  EXPECT_EQ(buf.Offer(9, 9, emit), Admission::kDuplicate);
  // ...and a skipped slot is late.
  EXPECT_EQ(buf.Offer(12, 12, emit), Admission::kAdmitted);  // skips 10, 11
  EXPECT_EQ(buf.Offer(10, 10, emit), Admission::kLate);
  EXPECT_EQ(seen.size(), 11u);
}

TEST(ReorderBufferTest, ReconstructsBoundedShuffles) {
  for (uint64_t displacement : {1u, 2u, 5u, 16u}) {
    std::vector<int> values(500);
    for (std::size_t i = 0; i < values.size(); ++i) {
      values[i] = static_cast<int>(i * 7);
    }
    const auto shuffled = BoundedShuffle(values, displacement, displacement);
    ReorderBuffer<int> buf(displacement);
    std::vector<int> released;
    uint64_t expected_next = 0;
    auto emit = [&](uint64_t seq, int v) {
      ASSERT_EQ(seq, expected_next++);
      released.push_back(v);
    };
    for (const auto& [seq, v] : shuffled) {
      ASSERT_EQ(buf.Offer(seq, v, emit), Admission::kAdmitted);
    }
    buf.Flush(emit);
    EXPECT_EQ(released, values);
  }
}

TEST(ReorderBufferTest, RejectsStragglersBeyondHorizon) {
  ReorderBuffer<int> buf(2);
  std::vector<uint64_t> released;
  auto emit = [&](uint64_t seq, int) { released.push_back(seq); };
  EXPECT_EQ(buf.Offer(0, 0, emit), Admission::kAdmitted);
  EXPECT_EQ(buf.Offer(1, 1, emit), Admission::kAdmitted);
  // 5, 6, 7 push the watermark: 0, 1 and then 5 itself become final (the
  // buffer releases past the genuinely missing 2..4 for liveness).
  EXPECT_EQ(buf.Offer(5, 5, emit), Admission::kAdmitted);
  EXPECT_EQ(buf.Offer(6, 6, emit), Admission::kAdmitted);
  EXPECT_EQ(buf.Offer(7, 7, emit), Admission::kAdmitted);
  EXPECT_EQ(released, (std::vector<uint64_t>{0, 1, 5}));
  EXPECT_EQ(buf.Offer(2, 2, emit), Admission::kLate)
      << "seq 2's slot was already passed and never emitted";
  buf.Flush(emit);
  EXPECT_EQ(released, (std::vector<uint64_t>{0, 1, 5, 6, 7}));
  EXPECT_EQ(buf.pending(), 0u);
}

TEST(ReorderBufferTest, StragglerExactlyAtHorizonBoundaryIsReleased) {
  // The release rule is front + horizon <= max_seen_: an element arriving
  // exactly `horizon` behind the newest is still admissible, and the next
  // arrival makes it final. Exercise the == boundary precisely.
  const uint64_t kHorizon = 4;
  ReorderBuffer<int> buf(kHorizon);
  std::vector<uint64_t> released;
  auto emit = [&](uint64_t seq, int) { released.push_back(seq); };
  // Arrivals 1..4 leave seq 0 pending: front(0) + 4 <= max_seen only once
  // max_seen reaches 4 — at which point 0 releases immediately.
  for (uint64_t i = 1; i < kHorizon; ++i) {
    EXPECT_EQ(buf.Offer(i, static_cast<int>(i), emit), Admission::kAdmitted);
    EXPECT_TRUE(released.empty()) << "nothing final before the gap fills";
  }
  EXPECT_EQ(buf.Offer(kHorizon, 4, emit), Admission::kAdmitted);
  EXPECT_TRUE(released.empty()) << "front=1: 1 + 4 > max_seen=4";
  // The straggler lands exactly at the boundary: front(0) + 4 == max_seen(4).
  EXPECT_EQ(buf.Offer(0, 0, emit), Admission::kAdmitted);
  EXPECT_EQ(released, (std::vector<uint64_t>{0}));
  buf.Flush(emit);
  EXPECT_EQ(released, (std::vector<uint64_t>{0, 1, 2, 3, 4}));
}

TEST(ReorderBufferTest, DetectsInHeapDuplicates) {
  // The release-build bug: a duplicate of a *pending* sequence used to be
  // pushed into the heap and emitted twice (the DCHECK at Release only
  // fires in debug builds). It must be rejected without buffering.
  ReorderBuffer<int> buf(8);
  std::vector<std::pair<uint64_t, int>> released;
  auto emit = [&](uint64_t seq, int v) { released.emplace_back(seq, v); };
  EXPECT_EQ(buf.Offer(2, 200, emit), Admission::kAdmitted);
  EXPECT_EQ(buf.pending(), 1u);
  EXPECT_EQ(buf.Offer(2, 999, emit), Admission::kDuplicate);
  EXPECT_EQ(buf.pending(), 1u) << "duplicate must not be buffered";
  EXPECT_EQ(buf.Offer(0, 0, emit), Admission::kAdmitted);
  EXPECT_EQ(buf.Offer(1, 100, emit), Admission::kAdmitted);
  buf.Flush(emit);
  ASSERT_EQ(released.size(), 3u);
  EXPECT_EQ(released[2], (std::pair<uint64_t, int>{2, 200}))
      << "the first-offered value wins; the duplicate's payload is dropped";
}

TEST(ReorderBufferTest, DetectsAlreadyReleasedDuplicates) {
  ReorderBuffer<int> buf(2);
  std::vector<uint64_t> released;
  auto emit = [&](uint64_t seq, int) { released.push_back(seq); };
  for (uint64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(buf.Offer(i, static_cast<int>(i), emit), Admission::kAdmitted);
  }
  EXPECT_EQ(released, (std::vector<uint64_t>{0, 1, 2, 3}));
  // 3 was released and is within the dedup horizon: a re-send is a
  // duplicate, not merely "late".
  EXPECT_EQ(buf.Offer(3, 3, emit), Admission::kDuplicate);
  // 0 was released long ago (outside the bounded dedup window); the buffer
  // cannot distinguish it from a straggler and classifies it late. Either
  // way it is rejected and never re-emitted.
  EXPECT_EQ(buf.Offer(0, 0, emit), Admission::kLate);
  buf.Flush(emit);
  EXPECT_EQ(released, (std::vector<uint64_t>{0, 1, 2, 3, 4, 5}));
}

TEST(ReorderBufferTest, FuzzShuffleWithDuplicatesEmitsExactSequence) {
  // Randomized regression for the duplicate-emission bug: shuffle 0..n-1
  // within the horizon, randomly re-offer ~20% of elements (both pending
  // and already-released), and assert the emitted sequence is *exactly*
  // 0..n-1 — no duplicates, no gaps, no reordering.
  for (uint64_t trial = 0; trial < 20; ++trial) {
    const uint64_t displacement = 1 + trial % 12;
    const std::size_t n = 300;
    std::vector<int> values(n);
    for (std::size_t i = 0; i < n; ++i) values[i] = static_cast<int>(i);
    auto stream = BoundedShuffle(values, displacement, 1000 + trial);

    // Splice duplicate offers into the arrival order: each re-sends an
    // element a few positions after its original arrival.
    util::SplitMix64 rng(7000 + trial);
    std::vector<std::pair<uint64_t, int>> arrivals;
    arrivals.reserve(stream.size() * 2);
    std::vector<std::pair<uint64_t, int>> delayed;
    for (std::size_t i = 0; i < stream.size(); ++i) {
      arrivals.push_back(stream[i]);
      if (rng.NextBounded(5) == 0) {
        delayed.push_back(stream[i]);
      }
      if (!delayed.empty() && rng.NextBounded(3) == 0) {
        arrivals.push_back(delayed.front());
        delayed.erase(delayed.begin());
      }
    }
    for (const auto& d : delayed) arrivals.push_back(d);

    ReorderBuffer<int> buf(displacement);
    std::vector<uint64_t> emitted;
    auto emit = [&](uint64_t seq, int) { emitted.push_back(seq); };
    std::vector<bool> admitted(n, false);
    for (const auto& [seq, v] : arrivals) {
      const Admission a = buf.Offer(seq, v, emit);
      if (a == Admission::kAdmitted) {
        ASSERT_FALSE(admitted[seq]) << "seq " << seq << " admitted twice";
        admitted[seq] = true;
      }
    }
    buf.Flush(emit);
    ASSERT_EQ(emitted.size(), n) << "trial " << trial;
    for (uint64_t i = 0; i < n; ++i) {
      ASSERT_EQ(emitted[i], i) << "trial " << trial;
    }
  }
}

TEST(ReorderBufferTest, PendingIsBoundedByHorizon) {
  ReorderBuffer<int> buf(8);
  auto drop = [](uint64_t, int) {};
  for (uint64_t i = 0; i < 1000; ++i) {
    (void)buf.Offer(i, 0, drop);  // in-order feed: always kAccepted
    EXPECT_LE(buf.pending(), 9u);
  }
}

TEST(ReorderBufferTest, EngineAnswersUnchangedByOutOfOrderArrival) {
  // The §3.1 guarantee, end to end: an engine fed through the reorder
  // buffer from a shuffled stream produces exactly the answers of the
  // in-order run.
  const std::vector<plan::QuerySpec> queries = {{32, 4}, {10, 2}};
  std::vector<int> values(400);
  util::SplitMix64 rng(77);
  for (int& v : values) v = static_cast<int>(rng.NextBounded(1000));

  auto run_inorder = [&] {
    engine::AcqEngine<core::SlickDequeInv<ops::Sum>> eng(queries,
                                                         plan::Pat::kPairs);
    std::vector<std::pair<uint32_t, double>> answers;
    for (int v : values) {
      eng.Push(v, [&](uint32_t q, double a) { answers.emplace_back(q, a); });
    }
    return answers;
  };

  auto run_shuffled = [&](uint64_t displacement, uint64_t seed) {
    engine::AcqEngine<core::SlickDequeInv<ops::Sum>> eng(queries,
                                                         plan::Pat::kPairs);
    ReorderBuffer<int> buf(displacement);
    std::vector<std::pair<uint32_t, double>> answers;
    auto feed = [&](uint64_t, int v) {
      eng.Push(v, [&](uint32_t q, double a) { answers.emplace_back(q, a); });
    };
    for (const auto& [seq, v] : BoundedShuffle(values, displacement, seed)) {
      EXPECT_EQ(buf.Offer(seq, v, feed), Admission::kAdmitted);
    }
    buf.Flush(feed);
    return answers;
  };

  const auto expected = run_inorder();
  EXPECT_EQ(run_shuffled(3, 1), expected);
  EXPECT_EQ(run_shuffled(8, 2), expected);
}

}  // namespace
}  // namespace slick::stream
