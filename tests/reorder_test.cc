// ReorderBuffer tests: exact-order reconstruction of bounded-displacement
// shuffles, straggler rejection, and end-to-end integration with the ACQ
// engine (§3.1: slightly out-of-order arrivals must not change answers).

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/slick_deque_inv.h"
#include "engine/acq_engine.h"
#include "ops/arith.h"
#include "stream/reorder.h"
#include "util/rng.h"

namespace slick::stream {
namespace {

/// Shuffles `values` with bounded displacement: elements are permuted only
/// within consecutive blocks of `displacement + 1`, so no element arrives
/// more than `displacement` positions from its slot (a bounded-lateness
/// stream per §3.1).
std::vector<std::pair<uint64_t, int>> BoundedShuffle(
    const std::vector<int>& values, uint64_t displacement, uint64_t seed) {
  std::vector<std::pair<uint64_t, int>> out;
  out.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out.emplace_back(i, values[i]);
  }
  util::SplitMix64 rng(seed);
  const std::size_t block = static_cast<std::size_t>(displacement) + 1;
  for (std::size_t lo = 0; lo < out.size(); lo += block) {
    const std::size_t hi = std::min(lo + block, out.size());
    for (std::size_t i = hi - 1; i > lo; --i) {  // Fisher-Yates per block
      std::swap(out[i], out[lo + rng.NextBounded(i - lo + 1)]);
    }
  }
  return out;
}

TEST(ReorderBufferTest, InOrderPassesThrough) {
  ReorderBuffer<int> buf(4);
  std::vector<uint64_t> seen;
  for (uint64_t i = 0; i < 20; ++i) {
    EXPECT_TRUE(buf.Offer(i, static_cast<int>(i),
                          [&](uint64_t seq, int) { seen.push_back(seq); }));
  }
  buf.Flush([&](uint64_t seq, int) { seen.push_back(seq); });
  ASSERT_EQ(seen.size(), 20u);
  for (uint64_t i = 0; i < 20; ++i) EXPECT_EQ(seen[i], i);
}

TEST(ReorderBufferTest, ReconstructsBoundedShuffles) {
  for (uint64_t displacement : {1u, 2u, 5u, 16u}) {
    std::vector<int> values(500);
    for (std::size_t i = 0; i < values.size(); ++i) {
      values[i] = static_cast<int>(i * 7);
    }
    const auto shuffled = BoundedShuffle(values, displacement, displacement);
    ReorderBuffer<int> buf(displacement);
    std::vector<int> released;
    uint64_t expected_next = 0;
    auto emit = [&](uint64_t seq, int v) {
      ASSERT_EQ(seq, expected_next++);
      released.push_back(v);
    };
    for (const auto& [seq, v] : shuffled) {
      ASSERT_TRUE(buf.Offer(seq, v, emit));
    }
    buf.Flush(emit);
    EXPECT_EQ(released, values);
  }
}

TEST(ReorderBufferTest, RejectsStragglersBeyondHorizon) {
  ReorderBuffer<int> buf(2);
  std::vector<uint64_t> released;
  auto emit = [&](uint64_t seq, int) { released.push_back(seq); };
  EXPECT_TRUE(buf.Offer(0, 0, emit));
  EXPECT_TRUE(buf.Offer(1, 1, emit));
  // 5, 6, 7 push the watermark: 0, 1 and then 5 itself become final (the
  // buffer releases past the genuinely missing 2..4 for liveness).
  EXPECT_TRUE(buf.Offer(5, 5, emit));
  EXPECT_TRUE(buf.Offer(6, 6, emit));
  EXPECT_TRUE(buf.Offer(7, 7, emit));
  EXPECT_EQ(released, (std::vector<uint64_t>{0, 1, 5}));
  EXPECT_FALSE(buf.Offer(2, 2, emit)) << "seq 2's slot was already passed";
  buf.Flush(emit);
  EXPECT_EQ(released, (std::vector<uint64_t>{0, 1, 5, 6, 7}));
  EXPECT_EQ(buf.pending(), 0u);
}

TEST(ReorderBufferTest, PendingIsBoundedByHorizon) {
  ReorderBuffer<int> buf(8);
  auto drop = [](uint64_t, int) {};
  for (uint64_t i = 0; i < 1000; ++i) {
    buf.Offer(i, 0, drop);
    EXPECT_LE(buf.pending(), 9u);
  }
}

TEST(ReorderBufferTest, EngineAnswersUnchangedByOutOfOrderArrival) {
  // The §3.1 guarantee, end to end: an engine fed through the reorder
  // buffer from a shuffled stream produces exactly the answers of the
  // in-order run.
  const std::vector<plan::QuerySpec> queries = {{32, 4}, {10, 2}};
  std::vector<int> values(400);
  util::SplitMix64 rng(77);
  for (int& v : values) v = static_cast<int>(rng.NextBounded(1000));

  auto run_inorder = [&] {
    engine::AcqEngine<core::SlickDequeInv<ops::Sum>> eng(queries,
                                                         plan::Pat::kPairs);
    std::vector<std::pair<uint32_t, double>> answers;
    for (int v : values) {
      eng.Push(v, [&](uint32_t q, double a) { answers.emplace_back(q, a); });
    }
    return answers;
  };

  auto run_shuffled = [&](uint64_t displacement, uint64_t seed) {
    engine::AcqEngine<core::SlickDequeInv<ops::Sum>> eng(queries,
                                                         plan::Pat::kPairs);
    ReorderBuffer<int> buf(displacement);
    std::vector<std::pair<uint32_t, double>> answers;
    auto feed = [&](uint64_t, int v) {
      eng.Push(v, [&](uint32_t q, double a) { answers.emplace_back(q, a); });
    };
    for (const auto& [seq, v] : BoundedShuffle(values, displacement, seed)) {
      EXPECT_TRUE(buf.Offer(seq, v, feed));
    }
    buf.Flush(feed);
    return answers;
  };

  const auto expected = run_inorder();
  EXPECT_EQ(run_shuffled(3, 1), expected);
  EXPECT_EQ(run_shuffled(8, 2), expected);
}

}  // namespace
}  // namespace slick::stream
