// Tests for the MPMC ingress ring and the engine's direct-producer path
// (DESIGN.md §14): single-thread claim/publish semantics (piecewise and
// out-of-order publishes, wrap capping, close/drain, ResetClaims replay),
// real-thread multi-producer differential fuzz against a per-producer
// sequential oracle, and ParallelShardedEngine<_, MpmcRing> answering
// identically to a serial oracle under concurrent Producer handles,
// blocking backpressure and mid-stream worker kills. The CI
// ThreadSanitizer job runs this file to machine-check the reserve/publish
// memory ordering that the model checker verifies at protocol level.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/slick_deque_inv.h"
#include "ops/arith.h"
#include "runtime/mpmc_ring.h"
#include "runtime/parallel_engine.h"
#include "util/rng.h"
#include "window/naive.h"
#include "window/ooo_tree.h"

namespace slick {
namespace {

using runtime::MpmcRing;

TEST(MpmcRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpmcRing<int>(100).capacity(), 128u);
  EXPECT_EQ(MpmcRing<int>(64).capacity(), 64u);
  EXPECT_EQ(MpmcRing<int>(1).capacity(), 2u);
}

TEST(MpmcRingTest, FifoOrderAcrossWraps) {
  MpmcRing<int> ring(8);
  int out[4];
  int next_in = 0, next_out = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(ring.try_push(next_in));
      ++next_in;
    }
    std::size_t n = ring.try_pop_n(out, 3);
    ASSERT_EQ(n, 3u);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], next_out++);
  }
  EXPECT_TRUE(ring.empty());
}

// The defining MPMC behavior: two claims can publish in either order, and
// the consumer only ever sees the *published prefix* — claim B publishing
// first exposes nothing until claim A (earlier position) publishes too.
TEST(MpmcRingTest, OutOfOrderPublishGatesOnThePrefix) {
  MpmcRing<int> ring(8);
  std::size_t na = 0, nb = 0;
  int* a = ring.TryClaimPush(2, &na);
  int* b = ring.TryClaimPush(2, &nb);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(na, 2u);
  ASSERT_EQ(nb, 2u);
  EXPECT_EQ(b, a + 2);  // reservations are disjoint and ordered
  a[0] = 0;
  a[1] = 1;
  b[0] = 2;
  b[1] = 3;
  ring.PublishPush(b, 2);  // later claim publishes FIRST
  int out[4];
  // Position order gates consumption: nothing is poppable yet.
  EXPECT_EQ(ring.try_pop_n(out, 4), 0u);
  EXPECT_EQ(ring.unconsumed(), 4u);  // both reservations count as backlog
  ring.PublishPush(a, 2);
  EXPECT_EQ(ring.try_pop_n(out, 4), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], i);
}

// A claim may be published piecewise (split into suffix pieces) — the
// consumer sees the prefix grow piece by piece.
TEST(MpmcRingTest, PiecewisePublishGrowsThePrefix) {
  MpmcRing<int> ring(8);
  std::size_t n = 0;
  int* span = ring.TryClaimPush(4, &n);
  ASSERT_EQ(n, 4u);
  std::iota(span, span + 4, 0);
  int out[4];
  ring.PublishPush(span, 1);
  EXPECT_EQ(ring.try_pop_n(out, 4), 1u);
  EXPECT_EQ(out[0], 0);
  ring.PublishPush(span + 1, 2);
  EXPECT_EQ(ring.try_pop_n(out, 4), 2u);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 2);
  ring.PublishPush(span + 3, 1);
  EXPECT_EQ(ring.try_pop_n(out, 4), 1u);
  EXPECT_EQ(out[0], 3);
}

TEST(MpmcRingTest, ClaimsCapAtTheArrayWrap) {
  MpmcRing<int> ring(8);
  int buf[8];
  std::iota(buf, buf + 8, 0);
  // Advance the cursors so the free span wraps: push 6, pop 6, push 6.
  ASSERT_EQ(ring.try_push_n(buf, 6), 6u);
  int out[8];
  ASSERT_EQ(ring.try_pop_n(out, 6), 6u);
  // Cursor now at 6 of 8: a claim of 5 must cap at the wrap (2 slots)...
  std::size_t n = 0;
  int* span = ring.TryClaimPush(5, &n);
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(n, 2u);
  ring.PublishPush(span, n);
  // ...and a second claim continues at the front of the array, where the
  // remaining request fits whole (6 slots are free there).
  std::size_t n2 = 0;
  int* span2 = ring.TryClaimPush(5, &n2);
  ASSERT_NE(span2, nullptr);
  EXPECT_EQ(n2, 5u);
  ring.PublishPush(span2, n2);
}

TEST(MpmcRingTest, BoundedAndPartialBatches) {
  MpmcRing<int> ring(8);
  std::vector<int> src(12);
  std::iota(src.begin(), src.end(), 0);
  EXPECT_EQ(ring.try_push_n(src.data(), 5), 5u);
  EXPECT_EQ(ring.try_push_n(src.data() + 5, 7), 3u);
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_FALSE(ring.try_push(99));
  int out[16];
  EXPECT_EQ(ring.try_pop_n(out, 16), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(ring.try_pop_n(out, 16), 0u);
}

TEST(MpmcRingTest, CloseDrainsThenSignalsShutdown) {
  MpmcRing<int> ring(8);
  ASSERT_TRUE(ring.try_push(1));
  ASSERT_TRUE(ring.try_push(2));
  ring.close();
  EXPECT_TRUE(ring.closed());
  EXPECT_FALSE(ring.try_push(3));
  int out[4];
  EXPECT_EQ(ring.pop_n(out, 4), 2u);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 2);
  EXPECT_EQ(ring.pop_n(out, 4), 0u);
}

// ResetClaims must make unreleased claims claimable again with their
// original values — the seq protocol never resets publication marks on
// release, which is exactly what makes the replay read published data.
TEST(MpmcRingTest, ResetClaimsReplaysUnreleasedSpans) {
  MpmcRing<int> ring(16);
  std::vector<int> src(8);
  std::iota(src.begin(), src.end(), 100);
  ASSERT_EQ(ring.try_push_n(src.data(), src.size()), src.size());
  std::size_t n1 = 0, n2 = 0;
  int* a = ring.TryClaimPop(3, &n1);
  ASSERT_EQ(n1, 3u);
  ring.ReleasePop(3);  // first span committed
  int* b = ring.TryClaimPop(3, &n2);
  ASSERT_EQ(n2, 3u);
  EXPECT_EQ(b, a + 3);
  EXPECT_EQ(ring.unreleased(), 3u);  // second span claimed, not released
  ring.ResetClaims();
  EXPECT_EQ(ring.unreleased(), 0u);
  // The replay hands back the same values, then continues past them.
  std::size_t n3 = 0;
  int* c = ring.TryClaimPop(8, &n3);
  ASSERT_NE(c, nullptr);
  ASSERT_EQ(n3, 5u);
  for (std::size_t i = 0; i < n3; ++i) EXPECT_EQ(c[i], 103 + static_cast<int>(i));
}

// ---------------------------------------------------------------------
// Real-thread differential fuzz: P producers blocking-push tagged
// sequences in randomized batch sizes through a tiny ring (forcing the
// full/empty parking paths); the consumer checks exactly-once delivery
// and per-producer FIFO order against the trivially correct oracle
// "producer p's subsequence reads 0,1,2,...".
// ---------------------------------------------------------------------
TEST(MpmcRingTest, MultiProducerStressKeepsPerProducerOrder) {
  constexpr int kProducers = 4;
  constexpr int64_t kPerProducer = 50000;
  constexpr int64_t kTag = 1'000'000;
  MpmcRing<int64_t> ring(64);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      util::SplitMix64 rng(static_cast<uint64_t>(p) + 7);
      std::vector<int64_t> batch;
      int64_t next = 0;
      while (next < kPerProducer) {
        batch.clear();
        const int64_t n = static_cast<int64_t>(rng.NextBounded(37)) + 1;
        for (int64_t i = 0; i < n && next < kPerProducer; ++i) {
          batch.push_back(p * kTag + next++);
        }
        ASSERT_EQ(ring.push_n(batch.data(), batch.size()), batch.size());
      }
    });
  }

  std::thread closer([&producers, &ring] {
    for (auto& t : producers) t.join();
    ring.close();
  });

  std::vector<int64_t> expected(kProducers, 0);
  int64_t total = 0;
  int64_t out[97];
  std::size_t n;
  while ((n = ring.pop_n(out, 97)) > 0) {
    for (std::size_t i = 0; i < n; ++i) {
      const int64_t p = out[i] / kTag;
      const int64_t v = out[i] % kTag;
      ASSERT_GE(p, 0);
      ASSERT_LT(p, kProducers);
      // Exactly-once, in order: each producer's subsequence counts up.
      ASSERT_EQ(v, expected[static_cast<std::size_t>(p)]++);
      ++total;
    }
  }
  EXPECT_EQ(total, kProducers * kPerProducer);
  for (int p = 0; p < kProducers; ++p) EXPECT_EQ(expected[p], kPerProducer);
  closer.join();
}

// ---------------------------------------------------------------------
// Engine over MPMC rings.
// ---------------------------------------------------------------------

// The router-only path must be answer-identical over either ring type:
// same differential harness as parallel_engine_test.cc, instantiated with
// Ring = MpmcRing.
TEST(MpmcEngineTest, RouterPathMatchesOracleOnMpmcRings) {
  using Agg = core::SlickDequeInv<ops::SumInt>;
  using Op = Agg::op_type;
  constexpr std::size_t kWindow = 64;
  constexpr std::size_t kShards = 4;
  runtime::ParallelShardedEngine<Agg, MpmcRing> parallel(
      kWindow, kShards,
      {.ring_capacity = 16, .batch = 3,
       .backpressure = runtime::Backpressure::kBlock});
  window::NaiveWindow<Op> oracle(kWindow);

  util::SplitMix64 rng(21);
  const std::size_t count = 4 * kWindow + 7 * kShards;
  for (std::size_t i = 0; i < count; ++i) {
    const auto v = Op::lift(static_cast<int64_t>(rng.NextBounded(1000)));
    parallel.push(v);
    oracle.slide(v);
    if ((i + 1) % kShards == 0 && i + 1 >= kWindow) {
      ASSERT_EQ(parallel.query(), oracle.query()) << "i=" << i;
    }
  }
  parallel.stop();
  const auto stats = parallel.stats();
  EXPECT_EQ(stats.admitted, count);
  EXPECT_EQ(stats.processed, count);
  EXPECT_EQ(stats.dropped, 0u);
}

/// Generates producer `p`'s slice of the event stream: timestamps jittered
/// around an increasing base (bounded disorder), small integer values.
std::vector<window::Timed<int64_t>> ProducerEvents(int p, std::size_t n) {
  util::SplitMix64 rng(static_cast<uint64_t>(p) * 97 + 13);
  std::vector<window::Timed<int64_t>> events(n);
  for (std::size_t i = 0; i < n; ++i) {
    const uint64_t base = i + 1;
    const uint64_t jitter = rng.NextBounded(40);
    events[i].t = base > jitter ? base - jitter : base;
    events[i].v = static_cast<int64_t>(rng.NextBounded(1000));
  }
  return events;
}

/// Drives `kProducers` concurrent Producer handles over an event-time
/// MPMC engine, then checks the answer against a serial oracle over the
/// union of all slices. The time range is wider than every timestamp, so
/// the window is [0, wm] regardless of how the concurrent round-robin
/// interleaving distributed events across shards — which is what makes
/// the answer deterministic and the differential exact. `opt` lets the
/// caller turn on supervision; `kill` arms a mid-stream worker fail-stop.
void RunProducerDifferential(
    runtime::ParallelShardedEngine<window::OooTree<ops::SumInt>,
                                   MpmcRing>::Options opt,
    bool kill) {
  using Tree = window::OooTree<ops::SumInt>;
  using Engine = runtime::ParallelShardedEngine<Tree, MpmcRing>;
  constexpr std::size_t kShards = 4;
  constexpr int kProducers = 4;
  constexpr std::size_t kPerProducer = 5000;
  constexpr uint64_t kRange = 1 << 20;  // wider than any ts: window is [0, wm]

  Engine eng(kRange, kShards, opt);
  if (kill) {
    eng.InjectWorkerKill(1, runtime::KillPoint::kAfterSlide, 3);
    eng.InjectWorkerKill(2, runtime::KillPoint::kBeforeSlide, 5);
  }

  std::vector<std::vector<window::Timed<int64_t>>> slices;
  slices.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    slices.push_back(ProducerEvents(p, kPerProducer));
  }

  std::atomic<int> live{kProducers};
  std::vector<std::thread> threads;
  threads.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&eng, &slices, &live, p] {
      Engine::Producer prod = eng.MakeProducer();
      for (const auto& e : slices[static_cast<std::size_t>(p)]) {
        prod.push(e.t, e.v);
      }
      prod.flush();
      live.fetch_sub(1, std::memory_order_release);
    });
  }
  // Coordinator loop: on a supervised engine, a producer blocked on a
  // dead worker's ring stays parked until this thread's poll revives the
  // worker — the quiesce protocol from the Producer contract.
  while (live.load(std::memory_order_acquire) > 0) {
    eng.SupervisePoll();
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  for (auto& t : threads) t.join();

  const int64_t got = eng.query();
  const uint64_t wm = eng.watermark();  // exact at the quiescent cut
  int64_t expected = 0;
  for (const auto& slice : slices) {
    for (const auto& e : slice) {
      if (e.t <= wm) expected += e.v;
    }
  }
  EXPECT_EQ(got, expected);

  const auto stats = eng.stats();
  EXPECT_EQ(stats.admitted, static_cast<uint64_t>(kProducers) * kPerProducer);
  EXPECT_EQ(stats.processed, stats.admitted);
  EXPECT_EQ(stats.dropped, 0u);
  if (kill) {
    EXPECT_GE(stats.restarts, 2u);
  }
  eng.stop();
}

// Four concurrent producers, tiny rings (blocking backpressure exercises
// the park/wake paths), answers identical to the serial oracle.
TEST(MpmcEngineTest, ConcurrentProducersMatchSerialOracle) {
  RunProducerDifferential(
      {.ring_capacity = 64, .batch = 7,
       .backpressure = runtime::Backpressure::kBlock},
      /*kill=*/false);
}

// Same stream, supervised engine, two workers fail-stopped mid-stream
// while producers are actively feeding their rings: recovery replays the
// unreleased spans and the final answer is still bit-identical.
TEST(MpmcEngineTest, WorkerKillsUnderConcurrentProducersRecover) {
  RunProducerDifferential(
      {.ring_capacity = 64, .batch = 7,
       .backpressure = runtime::Backpressure::kBlock,
       .checkpoint_interval = 4},
      /*kill=*/true);
}

// Shedding policy under concurrent producers: nothing is ever silently
// lost — every pushed element is either admitted (and processed) or
// counted as dropped.
TEST(MpmcEngineTest, DropNewestConservesAccountingAcrossProducers) {
  using Tree = window::OooTree<ops::SumInt>;
  using Engine = runtime::ParallelShardedEngine<Tree, MpmcRing>;
  constexpr int kProducers = 4;
  constexpr std::size_t kPerProducer = 20000;
  Engine eng(1 << 20, 2,
             {.ring_capacity = 4, .batch = 1,
              .backpressure = runtime::Backpressure::kDropNewest});
  std::vector<std::thread> threads;
  threads.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&eng, p] {
      Engine::Producer prod = eng.MakeProducer();
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        prod.push(static_cast<uint64_t>(i + 1), static_cast<int64_t>(p));
      }
    });  // Producer destructor flushes the tail batches
  }
  for (auto& t : threads) t.join();
  eng.stop();
  const auto stats = eng.stats();
  EXPECT_EQ(stats.admitted + stats.dropped,
            static_cast<uint64_t>(kProducers) * kPerProducer);
  EXPECT_EQ(stats.processed, stats.admitted);
}

}  // namespace
}  // namespace slick
