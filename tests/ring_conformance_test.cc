// Ring conformance suite: the shared contract that lets ShardWorker and
// the supervised-recovery replay run unchanged over either ring type
// (DESIGN.md §14.1), pinned as a type-parameterized suite over SpscRing
// and MpmcRing. Covers the producer/consumer API shape, close semantics
// (drain-then-signal, wakeups), and the PR 5 claim-cursor regressions
// (disjoint sequential claims, close with a held unreleased claim,
// ResetClaims replay) — any future ring must pass this suite verbatim to
// be selectable in ParallelShardedEngine.

#include <chrono>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/mpmc_ring.h"
#include "runtime/shm/shm_ring.h"
#include "runtime/spsc_ring.h"

namespace slick {
namespace {

template <typename Ring>
class RingConformanceTest : public ::testing::Test {};

using RingTypes =
    ::testing::Types<runtime::SpscRing<int>, runtime::MpmcRing<int>,
                     runtime::ShmRing<int>>;

class RingTypeNames {
 public:
  template <typename T>
  static std::string GetName(int) {
    if constexpr (requires { T::kShared; }) {
      return "Shm";
    } else {
      return T::kMultiProducer ? "Mpmc" : "Spsc";
    }
  }
};

TYPED_TEST_SUITE(RingConformanceTest, RingTypes, RingTypeNames);

TYPED_TEST(RingConformanceTest, MultiProducerTraitIsDeclared) {
  // The engine keys Producer-handle support on this trait; both values
  // must be well-defined compile-time constants.
  constexpr bool mp = TypeParam::kMultiProducer;
  EXPECT_TRUE(mp == true || mp == false);
}

TYPED_TEST(RingConformanceTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TypeParam(100).capacity(), 128u);
  EXPECT_EQ(TypeParam(64).capacity(), 64u);
  EXPECT_EQ(TypeParam(1).capacity(), 2u);
}

TYPED_TEST(RingConformanceTest, FifoOrderAcrossWraps) {
  TypeParam ring(8);
  int out[4];
  int next_in = 0, next_out = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(ring.try_push(next_in));
      ++next_in;
    }
    std::size_t n = ring.try_pop_n(out, 3);
    ASSERT_EQ(n, 3u);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], next_out++);
  }
  EXPECT_TRUE(ring.empty());
}

TYPED_TEST(RingConformanceTest, BoundedAndPartialBatches) {
  TypeParam ring(8);
  std::vector<int> src(12);
  std::iota(src.begin(), src.end(), 0);
  EXPECT_EQ(ring.try_push_n(src.data(), 5), 5u);
  EXPECT_EQ(ring.try_push_n(src.data() + 5, 7), 3u);
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_FALSE(ring.try_push(99));
  int out[16];
  EXPECT_EQ(ring.try_pop_n(out, 16), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(ring.try_pop_n(out, 16), 0u);
}

TYPED_TEST(RingConformanceTest, ClaimPushPublishRoundTrip) {
  TypeParam ring(8);
  std::size_t n = 0;
  int* span = ring.TryClaimPush(3, &n);
  ASSERT_NE(span, nullptr);
  ASSERT_EQ(n, 3u);
  std::iota(span, span + 3, 10);
  // Nothing is visible until the publish (both rings defer visibility —
  // the SPSC ring via its tail store, the MPMC ring via per-slot seqs).
  int out[4];
  EXPECT_EQ(ring.try_pop_n(out, 4), 0u);
  ring.PublishPush(span, 3);
  EXPECT_EQ(ring.try_pop_n(out, 4), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(out[i], 10 + i);
}

TYPED_TEST(RingConformanceTest, CloseDrainsThenSignalsShutdown) {
  TypeParam ring(8);
  ASSERT_TRUE(ring.try_push(1));
  ASSERT_TRUE(ring.try_push(2));
  ring.close();
  EXPECT_TRUE(ring.closed());
  EXPECT_FALSE(ring.try_push(3));  // producer rejected after close
  int out[4];
  EXPECT_EQ(ring.pop_n(out, 4), 2u);  // pre-close elements still drain
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 2);
  EXPECT_EQ(ring.pop_n(out, 4), 0u);  // then the shutdown signal
}

// PR 5 regression: sequential claims without an intervening release must
// return disjoint spans (the claim cursor, not the release cursor, drives
// handout) — a consumer deferring releases must never aggregate twice.
TYPED_TEST(RingConformanceTest, SequentialClaimsAreDisjoint) {
  TypeParam ring(16);
  std::vector<int> src(8);
  std::iota(src.begin(), src.end(), 0);
  ASSERT_EQ(ring.try_push_n(src.data(), src.size()), src.size());
  std::size_t n1 = 0, n2 = 0;
  int* a = ring.TryClaimPop(4, &n1);
  int* b = ring.TryClaimPop(4, &n2);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(n1, 4u);
  ASSERT_EQ(n2, 4u);
  EXPECT_EQ(b, a + 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(a[i], i);
    EXPECT_EQ(b[i], 4 + i);
  }
  EXPECT_EQ(ring.unconsumed(), 0u);
  EXPECT_EQ(ring.unreleased(), 8u);
  ring.ReleasePop(8);
  EXPECT_EQ(ring.unreleased(), 0u);
  EXPECT_TRUE(ring.empty());
}

// PR 5 regression: a held unreleased claim across close() — the post-close
// drain hands out only the remaining elements, exactly once.
TYPED_TEST(RingConformanceTest, CloseWithUnreleasedClaimDrainsExactlyOnce) {
  TypeParam ring(16);
  std::vector<int> src(10);
  std::iota(src.begin(), src.end(), 0);
  ASSERT_EQ(ring.try_push_n(src.data(), src.size()), src.size());

  std::size_t n1 = 0;
  int* held = ring.TryClaimPop(6, &n1);
  ASSERT_NE(held, nullptr);
  ASSERT_EQ(n1, 6u);

  ring.close();

  std::size_t n2 = 0;
  int* rest = ring.ClaimPop(16, &n2);
  ASSERT_NE(rest, nullptr);
  ASSERT_EQ(n2, 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(rest[i], 6 + i);

  ring.ReleasePop(n1 + n2);
  std::size_t n3 = ~std::size_t{0};
  EXPECT_EQ(ring.ClaimPop(16, &n3), nullptr);
  EXPECT_EQ(n3, 0u);
}

// The crash-recovery replay primitive: ResetClaims rewinds the claim
// cursor so the whole unreleased span is claimable again, in order, with
// its original values, followed by the never-claimed suffix.
TYPED_TEST(RingConformanceTest, ResetClaimsReplaysUnreleasedSpan) {
  TypeParam ring(16);
  std::vector<int> src(12);
  std::iota(src.begin(), src.end(), 0);
  ASSERT_EQ(ring.try_push_n(src.data(), src.size()), src.size());

  std::size_t n = 0;
  ASSERT_NE(ring.TryClaimPop(4, &n), nullptr);
  ASSERT_EQ(n, 4u);
  ring.ReleasePop(4);
  ASSERT_NE(ring.TryClaimPop(4, &n), nullptr);
  ASSERT_EQ(n, 4u);
  EXPECT_EQ(ring.unreleased(), 4u);
  EXPECT_EQ(ring.unconsumed(), 4u);

  ring.ResetClaims();  // "crash": abandon the claimed batch

  EXPECT_EQ(ring.unreleased(), 0u);
  EXPECT_EQ(ring.unconsumed(), 8u);
  int out[16];
  EXPECT_EQ(ring.try_pop_n(out, 16), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], 4 + i);
  EXPECT_TRUE(ring.empty());
}

// close() must wake a consumer parked on an empty ring.
TYPED_TEST(RingConformanceTest, CloseWakesParkedConsumer) {
  TypeParam ring(16);
  std::thread consumer([&ring] {
    int out[4];
    EXPECT_EQ(ring.pop_n(out, 4), 0u);  // parks until close
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ring.close();
  consumer.join();
}

// A producer parked on a full ring must be released by the consumer
// draining (backpressure) — the blocking-push park/wake handshake.
TYPED_TEST(RingConformanceTest, ConsumerReleasesBlockedProducer) {
  TypeParam ring(8);
  std::vector<int> src(32);
  std::iota(src.begin(), src.end(), 0);
  std::thread producer([&ring, &src] {
    EXPECT_EQ(ring.push_n(src.data(), src.size()), src.size());
  });
  int expected = 0;
  int out[8];
  while (expected < 32) {
    const std::size_t n = ring.pop_n(out, 8);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], expected++);
  }
  producer.join();
}

}  // namespace
}  // namespace slick
