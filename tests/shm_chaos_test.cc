// Shm lease chaos suite (DESIGN.md §17): producers that die — cleanly,
// mid-span, or as stalled zombies — must never wedge the consumer or
// corrupt the stream. Tier-1 legs cover the reaper protocol with real
// process death (fork + _exit without detach) and forged clocks; the
// -DSLICK_FAULT_INJECTION=ON legs (the CI chaos job) SIGKILL producer
// processes at seeded claim/publish points and check the drained answers
// bit-identical against per-shard serial oracles, with leases_reclaimed
// matching the injected kills exactly. Suite names contain "Lease" so the
// TSan CI leg's -R filter picks them up.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/slick_deque_inv.h"
#include "ops/arith.h"
#include "runtime/fault.h"
#include "runtime/parallel_engine.h"
#include "runtime/shm/shm_ring.h"
#include "util/clock.h"
#include "window/naive.h"

namespace slick::runtime {

/// White-box peer (befriended by ShmRing): forges lease rows into states
/// only a crash between two instructions can produce organically — the
/// kIntent window between the intent store and the tail CAS.
struct ShmRingTestPeer {
  template <typename T>
  static ShmLease& Lease(ShmRing<T>& ring, std::size_t i) {
    return ring.leases_[i];
  }
};

}  // namespace slick::runtime

namespace slick {
namespace {

namespace fault = runtime::fault;

using IntRing = runtime::ShmRing<int>;
using IntLease = IntRing::LeaseProducer;

// ---------------------------------------------------------------------
// Tier-1 legs: real process death and forged clocks, no fault injection.
// ---------------------------------------------------------------------

// The read-only triage path behind `telemetry_dump --shm=<name>`:
// InspectShmSegment must surface the cursors, the reaper counters and a
// live producer's in-flight lease row without knowing the slot type, and
// must show the row freed again after a graceful detach.
TEST(ShmLeaseReclaimTest, InspectorSeesCursorsAndLiveLease) {
  // Named segment: the anonymous constructor unlinks at birth, which is
  // exactly what InspectShmSegment (attach-by-name) cannot see.
  const std::string seg =
      "/slick-inspector-test-" + std::to_string(::getpid());
  IntRing ring(seg, 8);
  auto producer = ring.AttachProducer();
  const int live[3] = {10, 11, 12};
  std::size_t pushed = 0;
  ASSERT_EQ(producer.TryPush(live, 3, &pushed), IntLease::Result::kOk);
  ASSERT_EQ(pushed, 3u);
  std::size_t claimed = 0;
  ASSERT_EQ(producer.TryBeginClaim(2, &claimed), IntLease::Result::kOk);
  ASSERT_EQ(claimed, 2u);

  const runtime::ShmSegmentInfo mid = runtime::InspectShmSegment(ring.name());
  ASSERT_TRUE(mid.ok) << mid.error;
  EXPECT_EQ(mid.capacity, ring.capacity());
  EXPECT_EQ(mid.slot_size, sizeof(int));
  EXPECT_FALSE(mid.closed);
  EXPECT_EQ(mid.head, 0u);
  EXPECT_EQ(mid.tail, 5u);  // 3 published + 2 claimed reservations
  const auto me = static_cast<uint64_t>(::getpid());
  bool found = false;
  for (const runtime::ShmLeaseInfo& l : mid.leases) {
    if (l.pid != me) continue;
    found = true;
    EXPECT_EQ(l.span_begin, 3u);
    EXPECT_EQ(l.span_end, 5u);
    EXPECT_EQ(l.span_state,
              static_cast<uint64_t>(runtime::LeaseSpan::kOwned));
    EXPECT_GT(l.heartbeat_ns, 0u);
    EXPECT_EQ(l.fenced_at_ns, 0u);
  }
  EXPECT_TRUE(found) << "live lease row missing from the inspection";

  ASSERT_EQ(producer.PublishClaimed(), 2u);
  producer.Detach();
  const runtime::ShmSegmentInfo after =
      runtime::InspectShmSegment(ring.name());
  ASSERT_TRUE(after.ok) << after.error;
  EXPECT_EQ(after.tail, 5u);
  for (const runtime::ShmLeaseInfo& l : after.leases) {
    EXPECT_NE(l.pid, me) << "detached row still attributed to this pid";
  }
  int out[8] = {};
  EXPECT_EQ(ring.try_pop_n(out, 8), 5u);
}

// A producer process that dies holding a claimed-but-unpublished span
// (and never detaches — _exit skips destructors) must be detected by the
// pid-liveness probe alone, its span tombstoned, and its lease row freed
// for the next attacher; the consumer skips the hole and keeps flowing.
TEST(ShmLeaseReclaimTest, DeadProducerIsReclaimedAndConsumerSkipsHole) {
  IntRing ring(64);
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const pid_t child = ::fork();
  ASSERT_NE(child, -1);
  if (child == 0) {
    // Child: publish one live batch, abandon a claimed span, die without
    // detaching. No gtest/stdio here — only lock-free ring operations
    // are fork-safe against the parent's state.
    auto producer = ring.AttachProducer();
    std::array<int, 8> batch{};
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i] = static_cast<int>(i) + 1;
    }
    std::size_t pushed = 0;
    if (producer.TryPush(batch.data(), batch.size(), &pushed) !=
            IntLease::Result::kOk ||
        pushed != batch.size()) {
      ::_exit(2);
    }
    std::size_t claimed = 0;
    if (producer.TryBeginClaim(4, &claimed) != IntLease::Result::kOk ||
        claimed != 4) {
      ::_exit(3);
    }
    // Poison the abandoned span: these values must never be consumed.
    for (std::size_t i = 0; i < claimed; ++i) producer.claim_data()[i] = -1;
    const char byte = 'x';
    if (::write(fds[1], &byte, 1) != 1) ::_exit(4);
    ::_exit(0);
  }
  char byte = 0;
  ASSERT_EQ(::read(fds[0], &byte, 1), 1);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0);
  ::close(fds[0]);
  ::close(fds[1]);

  // Effectively-infinite TTL: only the pid probe can justify this reap.
  const runtime::ShmReapStats reap =
      ring.ReapExpiredLeases(util::MonotonicNanos(), uint64_t{1} << 62);
  EXPECT_EQ(reap.leases_reclaimed, 1u);
  EXPECT_EQ(reap.slots_tombstoned, 4u);
  EXPECT_EQ(reap.zombie_fences, 0u);  // the holder was truly dead

  // The live batch drains; the tombstoned hole yields nothing.
  std::array<int, 16> out{};
  ASSERT_EQ(ring.try_pop_n(out.data(), out.size()), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) + 1);
  }
  // Traffic beyond the hole flows, and the freed row re-attaches.
  auto fresh = ring.AttachProducer();
  ASSERT_TRUE(fresh.valid());
  const std::array<int, 3> more{100, 101, 102};
  std::size_t pushed = 0;
  ASSERT_EQ(fresh.TryPush(more.data(), more.size(), &pushed),
            IntLease::Result::kOk);
  ASSERT_EQ(ring.try_pop_n(out.data(), out.size()), 3u);
  EXPECT_EQ(out[0], 100);
  EXPECT_EQ(out[2], 102);
  EXPECT_TRUE(ring.empty());
  const runtime::ShmLeaseStats stats = ring.lease_stats();
  EXPECT_EQ(stats.leases_reclaimed, 1u);
  EXPECT_EQ(stats.slots_tombstoned, 4u);
  EXPECT_EQ(stats.zombie_fences, 0u);
}

// The zombie-resume race in miniature, single process, forged clock: a
// producer whose heartbeat went stale is fenced and repaired while still
// alive; its later publish must land NOTHING (the epoch gate plus the
// per-slot CAS both say so) and its next claim must report kFenced.
TEST(ShmLeaseReclaimTest, StaleHeartbeatZombiePublishLandsNothing) {
  IntRing ring(64);
  auto zombie = ring.AttachProducer();
  std::size_t claimed = 0;
  ASSERT_EQ(zombie.TryBeginClaim(4, &claimed), IntLease::Result::kOk);
  ASSERT_EQ(claimed, 4u);
  for (std::size_t i = 0; i < claimed; ++i) zombie.claim_data()[i] = -1;

  constexpr uint64_t kLeaseNs = 1'000'000;
  const runtime::ShmReapStats reap = ring.ReapExpiredLeases(
      util::MonotonicNanos() + 10 * kLeaseNs, kLeaseNs);
  EXPECT_EQ(reap.zombie_fences, 1u);      // fenced while the pid lives
  EXPECT_EQ(reap.slots_tombstoned, 4u);   // kOwned: repaired immediately
  EXPECT_EQ(reap.leases_reclaimed, 1u);

  EXPECT_EQ(zombie.PublishClaimed(), 0u);  // the zombie loses
  std::size_t n = 0;
  EXPECT_EQ(zombie.TryBeginClaim(4, &n), IntLease::Result::kFenced);

  // Live traffic flows around the hole; nothing poisoned comes out.
  const std::array<int, 3> live{5, 6, 7};
  EXPECT_EQ(ring.try_push_n(live.data(), live.size()), 3u);
  std::array<int, 8> out{};
  ASSERT_EQ(ring.try_pop_n(out.data(), out.size()), 3u);
  EXPECT_EQ(out[0], 5);
  EXPECT_EQ(out[1], 6);
  EXPECT_EQ(out[2], 7);
  EXPECT_TRUE(ring.empty());

  // The fenced handle detaches as a no-op and the row is re-attachable.
  zombie.Detach();
  auto fresh = ring.AttachProducer();
  EXPECT_TRUE(fresh.valid());
}

// The kIntent state machine: a lease that crashed between recording
// intent and learning its CAS outcome gets ONE further lease period of
// grace after the fence (the span may belong to a live winner), and only
// then is repaired. Positions at or beyond tail — a CAS that never ran —
// are never tombstoned.
TEST(ShmLeaseReclaimTest, IntentSpanGetsGraceThenRepair) {
  IntRing ring(64);
  auto crashed = ring.AttachProducer();  // takes row 0
  // Manufacture the crash window: the tail advanced by a claim that was
  // never published, with row 0 recording kIntent over that span.
  std::size_t n = 0;
  int* span = ring.TryClaimPush(3, &n);
  ASSERT_NE(span, nullptr);
  ASSERT_EQ(n, 3u);
  for (std::size_t i = 0; i < n; ++i) span[i] = -1;
  runtime::ShmLease& row = runtime::ShmRingTestPeer::Lease(ring, 0);
  row.span_begin.store(0, std::memory_order_relaxed);
  row.span_end.store(3, std::memory_order_relaxed);
  row.span_state.store(static_cast<uint64_t>(runtime::LeaseSpan::kIntent),
                       std::memory_order_release);

  constexpr uint64_t kLeaseNs = 1'000'000;
  const uint64_t t0 = util::MonotonicNanos() + 10 * kLeaseNs;
  // First pass: fence lands, repair is deferred.
  const runtime::ShmReapStats first = ring.ReapExpiredLeases(t0, kLeaseNs);
  EXPECT_EQ(first.zombie_fences, 1u);
  EXPECT_EQ(first.slots_tombstoned, 0u);
  EXPECT_EQ(first.leases_reclaimed, 0u);
  // Second pass inside the grace window: still deferred, no double fence.
  const runtime::ShmReapStats second =
      ring.ReapExpiredLeases(t0 + kLeaseNs / 2, kLeaseNs);
  EXPECT_EQ(second.zombie_fences, 0u);
  EXPECT_EQ(second.slots_tombstoned, 0u);
  EXPECT_EQ(second.leases_reclaimed, 0u);
  // Past the grace: the span is tombstoned and the row freed.
  const runtime::ShmReapStats third =
      ring.ReapExpiredLeases(t0 + 2 * kLeaseNs, kLeaseNs);
  EXPECT_EQ(third.slots_tombstoned, 3u);
  EXPECT_EQ(third.leases_reclaimed, 1u);

  // The consumer flows past the repaired hole.
  const std::array<int, 2> live{41, 42};
  EXPECT_EQ(ring.try_push_n(live.data(), live.size()), 2u);
  std::array<int, 8> out{};
  ASSERT_EQ(ring.try_pop_n(out.data(), out.size()), 2u);
  EXPECT_EQ(out[0], 41);
  EXPECT_EQ(out[1], 42);
  EXPECT_TRUE(ring.empty());
}

// A kIntent span whose tail CAS never ran leaves tail untouched; the
// repair must skip every position at or beyond tail so a later winner's
// slots are not pre-tombstoned.
TEST(ShmLeaseReclaimTest, IntentSpanBeyondTailTombstonesNothing) {
  IntRing ring(64);
  auto crashed = ring.AttachProducer();
  runtime::ShmLease& row = runtime::ShmRingTestPeer::Lease(ring, 0);
  row.span_begin.store(0, std::memory_order_relaxed);
  row.span_end.store(4, std::memory_order_relaxed);  // tail is still 0
  row.span_state.store(static_cast<uint64_t>(runtime::LeaseSpan::kIntent),
                       std::memory_order_release);

  constexpr uint64_t kLeaseNs = 1'000'000;
  const uint64_t t0 = util::MonotonicNanos() + 10 * kLeaseNs;
  (void)ring.ReapExpiredLeases(t0, kLeaseNs);  // fence
  const runtime::ShmReapStats repair =
      ring.ReapExpiredLeases(t0 + 2 * kLeaseNs, kLeaseNs);
  EXPECT_EQ(repair.slots_tombstoned, 0u);
  EXPECT_EQ(repair.leases_reclaimed, 1u);

  // The untouched positions serve fresh pushes as slot zero onward.
  const std::array<int, 3> live{9, 10, 11};
  EXPECT_EQ(ring.try_push_n(live.data(), live.size()), 3u);
  std::array<int, 8> out{};
  ASSERT_EQ(ring.try_pop_n(out.data(), out.size()), 3u);
  EXPECT_EQ(out[0], 9);
  EXPECT_EQ(out[2], 11);
}

// ---------------------------------------------------------------------
// Fault-injection legs (the CI chaos job): seeded SIGKILLs and stalls.
// ---------------------------------------------------------------------

class ShmLeaseFaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::Enabled()) {
      GTEST_SKIP() << "built without SLICK_FAULT_INJECTION";
    }
    fault::DisarmAll();
  }
  void TearDown() override { fault::DisarmAll(); }
};

// The full zombie-resume schedule in real time: the producer stalls far
// past its lease inside PublishClaimed (kShmZombieResume), the reaper
// fences and repairs it mid-stall, and the resumed publish lands zero.
TEST_F(ShmLeaseFaultInjectionTest, ZombieResumeLosesPublishRace) {
  IntRing ring(64);
  fault::Arm(fault::Point::kShmZombieResume, /*lane=*/0, /*nth=*/1);
  std::atomic<int64_t> landed{-1};
  std::thread producer([&ring, &landed] {
    auto p = ring.AttachProducer();
    std::size_t claimed = 0;
    if (p.TryBeginClaim(4, &claimed) != IntLease::Result::kOk ||
        claimed != 4) {
      landed.store(-2, std::memory_order_release);
      return;
    }
    for (std::size_t i = 0; i < claimed; ++i) p.claim_data()[i] = -1;
    // Fires the armed stall (~10x the lease TTL), then tries to publish.
    landed.store(static_cast<int64_t>(p.PublishClaimed()),
                 std::memory_order_release);
  });
  // Reap on a fast cadence until the stalled lease is fenced + reclaimed.
  constexpr uint64_t kLeaseNs = 5'000'000;
  uint64_t reclaimed = 0;
  const uint64_t deadline = util::MonotonicNanos() + 20'000'000'000ull;
  while (reclaimed == 0 && util::MonotonicNanos() < deadline) {
    reclaimed +=
        ring.ReapExpiredLeases(util::MonotonicNanos(), kLeaseNs)
            .leases_reclaimed;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  producer.join();
  EXPECT_EQ(reclaimed, 1u);
  EXPECT_EQ(landed.load(std::memory_order_acquire), 0);
  const runtime::ShmLeaseStats stats = ring.lease_stats();
  EXPECT_EQ(stats.zombie_fences, 1u);
  EXPECT_EQ(stats.slots_tombstoned, 4u);
  // Only fresh data comes out of the repaired ring.
  const std::array<int, 2> live{7, 8};
  EXPECT_EQ(ring.try_push_n(live.data(), live.size()), 2u);
  std::array<int, 8> out{};
  ASSERT_EQ(ring.try_pop_n(out.data(), out.size()), 2u);
  EXPECT_EQ(out[0], 7);
  EXPECT_EQ(out[1], 8);
}

// kShmStallHeartbeat latches RefreshLease off permanently — the wedged
// producer's lease expires by TTL even though its pid stays alive, and
// its next claim is fenced.
TEST_F(ShmLeaseFaultInjectionTest, StalledHeartbeatExpiresByTtl) {
  IntRing ring(64);
  auto p = ring.AttachProducer();
  const std::array<int, 4> batch{1, 2, 3, 4};
  std::size_t pushed = 0;
  ASSERT_EQ(p.TryPush(batch.data(), batch.size(), &pushed),
            IntLease::Result::kOk);
  fault::Arm(fault::Point::kShmStallHeartbeat, /*lane=*/0, /*nth=*/1);
  p.RefreshLease();  // latches: refreshes stop from here on

  constexpr uint64_t kLeaseNs = 1'000'000;
  const runtime::ShmReapStats reap = ring.ReapExpiredLeases(
      util::MonotonicNanos() + 10 * kLeaseNs, kLeaseNs);
  EXPECT_EQ(reap.zombie_fences, 1u);
  EXPECT_EQ(reap.leases_reclaimed, 1u);
  EXPECT_EQ(reap.slots_tombstoned, 0u);  // span was idle: all published
  std::size_t n = 0;
  EXPECT_EQ(p.TryBeginClaim(2, &n), IntLease::Result::kFenced);
  // The already-published batch is untouched by the reclaim.
  std::array<int, 8> out{};
  ASSERT_EQ(ring.try_pop_n(out.data(), out.size()), 4u);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[3], 4);
}

// ---------------------------------------------------------------------
// The fork/SIGKILL chaos grid: {die-before-claim, die-mid-span,
// die-before-publish} x {1, 2, 4} producer processes against a live
// ParallelShardedEngine over shm rings. The engine must never wedge, the
// drained per-shard answers must be bit-identical to serial oracles over
// each shard's surviving sub-stream, and leases_reclaimed must equal the
// injected kills exactly.
// ---------------------------------------------------------------------

using ChaosParam = std::tuple<fault::Point, std::size_t>;

class ShmLeaseProcessKillChaos : public ::testing::TestWithParam<ChaosParam> {
 protected:
  void SetUp() override {
    if (!fault::Enabled()) {
      GTEST_SKIP() << "built without SLICK_FAULT_INJECTION";
    }
    fault::DisarmAll();
  }
  void TearDown() override { fault::DisarmAll(); }
};

constexpr std::size_t kChaosBatches = 6;   // batches each producer sends
constexpr std::size_t kChaosBatchLen = 8;  // slots per batch (= the window)
constexpr std::size_t kChaosMidSlot = 4;   // 1-based kill slot for mid-span

int64_t ChaosValue(std::size_t p, std::size_t b, std::size_t i) {
  return static_cast<int64_t>((p + 1) * 1'000'000 + b * 1'000 + i);
}

/// Kill batch for producer p: staggered so every lane dies at a distinct
/// seeded point, always leaving at least one full window of survivors.
std::size_t KillBatch(std::size_t p) { return p + 2; }

/// The values producer p lands before its kill, per the fault-point
/// semantics (see the Point enum docs): full batches below KillBatch,
/// plus — for mid-span — the slots published before the armed slot.
std::vector<int64_t> SurvivorStream(fault::Point point, std::size_t p) {
  std::vector<int64_t> lived;
  const std::size_t k = KillBatch(p);
  for (std::size_t b = 1; b < k; ++b) {
    for (std::size_t i = 0; i < kChaosBatchLen; ++i) {
      lived.push_back(ChaosValue(p, b, i));
    }
  }
  if (point == fault::Point::kShmDieMidSpan) {
    for (std::size_t i = 0; i + 1 < kChaosMidSlot; ++i) {
      lived.push_back(ChaosValue(p, k, i));
    }
  }
  return lived;
}

/// Slots the reaper must tombstone for producer p's abandoned span.
std::size_t ExpectedTombstones(fault::Point point) {
  switch (point) {
    case fault::Point::kShmDieBeforeClaim:
      return 0;  // the CAS never ran: nothing beyond tail to repair
    case fault::Point::kShmDieMidSpan:
      return kChaosBatchLen - (kChaosMidSlot - 1);
    default:
      return kChaosBatchLen;  // die-before-publish: the whole span
  }
}

TEST_P(ShmLeaseProcessKillChaos, EngineDrainsBitIdenticalAfterSigkills) {
  const auto [point, producers] = GetParam();
  using Agg = core::SlickDequeInv<ops::SumInt>;
  using Engine = runtime::ParallelShardedEngine<Agg, runtime::ShmRing>;
  using Lease = runtime::ShmRing<int64_t>::LeaseProducer;
  const typename Engine::Options opts = {
      // Larger than any lane's total pushes: a full-ring retry would
      // shift the seeded claim ordinals, so make kFull unreachable.
      .ring_capacity = 256,
      .batch = 4,
      .backpressure = runtime::Backpressure::kBlock,
      .checkpoint_interval = 0,
      .lease_ns = 50'000'000};
  Engine engine(kChaosBatchLen * producers, producers, opts);

  std::vector<pid_t> kids;
  for (std::size_t p = 0; p < producers; ++p) {
    const pid_t child = ::fork();
    ASSERT_NE(child, -1);
    if (child == 0) {
      // Child: arm our own injector copy (fork gave us the parent's,
      // which SetUp disarmed), attach to our shard's shm ring, and
      // stream batches until the armed point SIGKILLs us. Fork-safety:
      // only lock-free ring ops, no allocation, no stdio.
      const std::size_t k = KillBatch(p);
      uint64_t nth = 0;
      switch (point) {
        case fault::Point::kShmDieMidSpan:
          nth = (k - 1) * kChaosBatchLen + kChaosMidSlot;
          break;
        default:  // per-claim / per-publish points fire once per batch
          nth = k;
          break;
      }
      fault::Arm(point, /*lane=*/p, nth);
      auto producer = engine.shard_ring(p).AttachProducer();
      std::array<int64_t, kChaosBatchLen> batch{};
      for (std::size_t b = 1; b <= kChaosBatches; ++b) {
        for (std::size_t i = 0; i < kChaosBatchLen; ++i) {
          batch[i] = ChaosValue(p, b, i);
        }
        std::size_t pushed = 0;
        if (producer.TryPush(batch.data(), batch.size(), &pushed) !=
            Lease::Result::kOk) {
          ::_exit(3);  // full/fenced: the schedule never allows either
        }
      }
      ::_exit(4);  // the armed fault never fired — parent fails on this
    }
    kids.push_back(child);
  }

  // Every child must die by its own seeded SIGKILL. The waitpid also
  // reaps the zombie process entries, so the reaper's pid probe sees
  // ESRCH and needs no heartbeat staleness for the kOwned spans.
  for (pid_t kid : kids) {
    int status = 0;
    ASSERT_EQ(::waitpid(kid, &status, 0), kid);
    ASSERT_TRUE(WIFSIGNALED(status)) << "child survived its armed kill";
    ASSERT_EQ(WTERMSIG(status), SIGKILL);
  }

  std::size_t expected_processed = 0;
  for (std::size_t p = 0; p < producers; ++p) {
    expected_processed += SurvivorStream(point, p).size();
  }

  // Drive the supervisor-path reaper until every kill is reclaimed and
  // every surviving slot has been slid — the engine must not wedge.
  const uint64_t deadline = util::MonotonicNanos() + 30'000'000'000ull;
  for (;;) {
    engine.SupervisePoll();
    const telemetry::RuntimeSnapshot snap = engine.snapshot();
    uint64_t reclaimed = 0;
    for (const telemetry::ShardSnapshot& s : snap.shards) {
      reclaimed += s.leases_reclaimed;
    }
    if (reclaimed == producers &&
        engine.stats().processed == expected_processed) {
      break;
    }
    ASSERT_LT(util::MonotonicNanos(), deadline)
        << "engine wedged: reclaimed=" << reclaimed
        << " processed=" << engine.stats().processed << "/"
        << expected_processed;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Quiescent cut: per-shard answers bit-identical to serial oracles
  // over each shard's surviving sub-stream, and the repair telemetry
  // accounts for every kill exactly.
  const telemetry::RuntimeSnapshot snap = engine.snapshot();
  uint64_t total_tombstoned = 0;
  uint64_t total_zombie_fences = 0;
  for (std::size_t p = 0; p < producers; ++p) {
    window::NaiveWindow<ops::SumInt> oracle(kChaosBatchLen);
    const std::vector<int64_t> lived = SurvivorStream(point, p);
    for (int64_t v : lived) oracle.slide(ops::SumInt::lift(v));
    ASSERT_EQ(engine.shard(p).query(), oracle.query()) << "shard " << p;
    EXPECT_EQ(snap.shards[p].tuples_out, lived.size()) << "shard " << p;
    EXPECT_EQ(snap.shards[p].leases_reclaimed, 1u) << "shard " << p;
    total_tombstoned += snap.shards[p].slots_tombstoned;
    total_zombie_fences += snap.shards[p].zombie_fences;
  }
  EXPECT_EQ(total_tombstoned, ExpectedTombstones(point) * producers);
  EXPECT_EQ(total_zombie_fences, 0u);  // every fenced holder was dead
  EXPECT_EQ(engine.stats().restarts, 0u);  // the workers never died
  EXPECT_EQ(engine.stats().dropped, 0u);
  engine.stop();
}

std::string ChaosName(const ::testing::TestParamInfo<ChaosParam>& info) {
  const auto [point, producers] = info.param;
  const char* name = "DieBeforePublish";
  if (point == fault::Point::kShmDieBeforeClaim) name = "DieBeforeClaim";
  if (point == fault::Point::kShmDieMidSpan) name = "DieMidSpan";
  return std::string(name) + "x" + std::to_string(producers);
}

INSTANTIATE_TEST_SUITE_P(
    KillGrid, ShmLeaseProcessKillChaos,
    ::testing::Combine(
        ::testing::Values(fault::Point::kShmDieBeforeClaim,
                          fault::Point::kShmDieMidSpan,
                          fault::Point::kShmDieBeforePublish),
        ::testing::Values(std::size_t{1}, std::size_t{2}, std::size_t{4})),
    ChaosName);

}  // namespace
}  // namespace slick
