#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "ops/ops.h"

namespace slick::ops {
namespace {

// ---------------------------------------------------------------------------
// Trait classification (drives the paper's invertible/non-invertible split).
// ---------------------------------------------------------------------------

TEST(OpTraitsTest, ConceptsCoverTheLibrary) {
  static_assert(AggregateOp<Sum>);
  static_assert(AggregateOp<Count>);
  static_assert(AggregateOp<Product>);
  static_assert(AggregateOp<SumOfSquares>);
  static_assert(AggregateOp<Max>);
  static_assert(AggregateOp<Min>);
  static_assert(AggregateOp<ArgMax>);
  static_assert(AggregateOp<ArgMin>);
  static_assert(AggregateOp<AlphaMax>);
  static_assert(AggregateOp<Concat>);
  static_assert(AggregateOp<BoolAnd>);
  static_assert(AggregateOp<BoolOr>);
  static_assert(AggregateOp<Average>);
  static_assert(AggregateOp<StdDev>);
  static_assert(AggregateOp<GeoMean>);

  static_assert(InvertibleOp<Sum>);
  static_assert(InvertibleOp<Average>);
  static_assert(!InvertibleOp<Max>);
  static_assert(!InvertibleOp<Concat>);

  static_assert(SelectiveOp<Max>);
  static_assert(SelectiveOp<ArgMin>);
  static_assert(SelectiveOp<AlphaMax>);
  static_assert(!SelectiveOp<Sum>);
  static_assert(!SelectiveOp<Concat>);
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Algebraic laws, checked op by op.
// ---------------------------------------------------------------------------

template <typename Op>
void CheckAssociativity(typename Op::value_type x, typename Op::value_type y,
                        typename Op::value_type z) {
  EXPECT_EQ(Op::combine(Op::combine(x, y), z),
            Op::combine(x, Op::combine(y, z)));
}

template <typename Op>
void CheckIdentity(typename Op::value_type x) {
  EXPECT_EQ(Op::combine(Op::identity(), x), x);
  EXPECT_EQ(Op::combine(x, Op::identity()), x);
}

template <typename Op>
void CheckInverseRoundTrip(typename Op::value_type x,
                           typename Op::value_type y) {
  EXPECT_EQ(Op::inverse(Op::combine(x, y), y), x);
}

TEST(SumTest, Laws) {
  CheckAssociativity<Sum>(1.5, -2.0, 4.25);
  CheckIdentity<Sum>(3.75);
  CheckInverseRoundTrip<Sum>(10.5, 2.25);
  EXPECT_DOUBLE_EQ(Sum::lower(Sum::lift(2.5)), 2.5);
}

TEST(CountTest, Laws) {
  EXPECT_EQ(Count::lift(123.0), 1);
  CheckAssociativity<Count>(1, 2, 3);
  CheckIdentity<Count>(5);
  CheckInverseRoundTrip<Count>(7, 3);
}

TEST(ProductTest, Laws) {
  CheckAssociativity<Product>(2.0, 0.5, 8.0);
  CheckIdentity<Product>(4.0);
  CheckInverseRoundTrip<Product>(6.0, 2.0);
}

TEST(SumOfSquaresTest, LiftSquares) {
  EXPECT_DOUBLE_EQ(SumOfSquares::lift(3.0), 9.0);
  CheckInverseRoundTrip<SumOfSquares>(25.0, 9.0);
}

TEST(MaxMinTest, Laws) {
  CheckAssociativity<Max>(1.0, 9.0, 4.0);
  CheckIdentity<Max>(-100.0);
  EXPECT_DOUBLE_EQ(Max::combine(2.0, 7.0), 7.0);
  CheckAssociativity<Min>(1.0, 9.0, 4.0);
  CheckIdentity<Min>(100.0);
  EXPECT_DOUBLE_EQ(Min::combine(2.0, 7.0), 2.0);
}

TEST(MaxMinTest, SelectivityHolds) {
  // combine(x, y) ∈ {x, y} — the paper's non-invertible assumption.
  for (double x : {-3.0, 0.0, 5.5}) {
    for (double y : {-7.0, 0.0, 5.5, 9.0}) {
      const double m = Max::combine(x, y);
      EXPECT_TRUE(m == x || m == y);
      const double n = Min::combine(x, y);
      EXPECT_TRUE(n == x || n == y);
    }
  }
}

TEST(ArgMaxTest, TiesKeepEarlier) {
  const ArgSample a{5.0, 1};
  const ArgSample b{5.0, 2};
  EXPECT_EQ(ArgMax::combine(a, b).id, 1u);
  EXPECT_EQ(ArgMax::combine(b, a).id, 2u);  // non-commutative on ties
  const ArgSample c{7.0, 3};
  EXPECT_EQ(ArgMax::combine(a, c).id, 3u);
  CheckAssociativity<ArgMax>(a, b, c);
  CheckIdentity<ArgMax>(a);
}

TEST(ArgMinTest, PicksSmallestKey) {
  const ArgSample a{5.0, 1};
  const ArgSample c{7.0, 3};
  EXPECT_EQ(ArgMin::combine(a, c).id, 1u);
  CheckIdentity<ArgMin>(c);
}

TEST(FirstLastTest, SelectEndpoints) {
  EXPECT_DOUBLE_EQ(First::combine(1.0, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(Last::combine(1.0, 2.0), 2.0);
  // NaN identity behaves as neutral on both sides.
  EXPECT_DOUBLE_EQ(First::combine(First::identity(), 3.0), 3.0);
  EXPECT_DOUBLE_EQ(Last::combine(4.0, Last::identity()), 4.0);
  CheckAssociativity<First>(1.0, 2.0, 3.0);
  CheckAssociativity<Last>(1.0, 2.0, 3.0);
}

TEST(AlphaMaxTest, Laws) {
  CheckAssociativity<AlphaMax>("apple", "pear", "fig");
  CheckIdentity<AlphaMax>(std::string("zebra"));
  EXPECT_EQ(AlphaMax::combine("apple", "pear"), "pear");
}

TEST(ConcatTest, OrderSensitive) {
  EXPECT_EQ(Concat::combine("ab", "cd"), "abcd");
  EXPECT_NE(Concat::combine("ab", "cd"), Concat::combine("cd", "ab"));
  CheckAssociativity<Concat>("a", "b", "c");
  CheckIdentity<Concat>(std::string("x"));
}

TEST(BoolOpsTest, Laws) {
  EXPECT_TRUE(BoolAnd::combine(true, true));
  EXPECT_FALSE(BoolAnd::combine(true, false));
  EXPECT_TRUE(BoolOr::combine(false, true));
  CheckIdentity<BoolAnd>(false);
  CheckIdentity<BoolOr>(true);
}

// ---------------------------------------------------------------------------
// Algebraic aggregations: lower() computes the paper's composite answers.
// ---------------------------------------------------------------------------

TEST(AverageTest, ComputesMean) {
  auto acc = Average::identity();
  for (double x : {2.0, 4.0, 6.0}) acc = Average::combine(acc, Average::lift(x));
  EXPECT_DOUBLE_EQ(Average::lower(acc), 4.0);
  acc = Average::inverse(acc, Average::lift(2.0));
  EXPECT_DOUBLE_EQ(Average::lower(acc), 5.0);
  EXPECT_DOUBLE_EQ(Average::lower(Average::identity()), 0.0);
}

TEST(StdDevTest, ComputesPopulationStdDev) {
  auto acc = StdDev::identity();
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    acc = StdDev::combine(acc, StdDev::lift(x));
  }
  EXPECT_NEAR(StdDev::lower(acc), 2.0, 1e-12);  // classic textbook data set
  EXPECT_DOUBLE_EQ(StdDev::lower(StdDev::identity()), 0.0);
}

TEST(StdDevTest, InverseRemovesElement) {
  auto acc = StdDev::identity();
  for (double x : {1.0, 2.0, 3.0, 100.0}) {
    acc = StdDev::combine(acc, StdDev::lift(x));
  }
  acc = StdDev::inverse(acc, StdDev::lift(100.0));
  auto expect = StdDev::identity();
  for (double x : {1.0, 2.0, 3.0}) expect = StdDev::combine(expect, StdDev::lift(x));
  EXPECT_NEAR(StdDev::lower(acc), StdDev::lower(expect), 1e-9);
}

TEST(GeoMeanTest, ComputesGeometricMean) {
  auto acc = GeoMean::identity();
  for (double x : {2.0, 8.0}) acc = GeoMean::combine(acc, GeoMean::lift(x));
  EXPECT_NEAR(GeoMean::lower(acc), 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(GeoMean::lower(GeoMean::identity()), 0.0);
}

// ---------------------------------------------------------------------------
// Op counting (the Table 1 measurement harness).
// ---------------------------------------------------------------------------

TEST(CountingOpTest, CountsCombinesAndInverses) {
  using CSum = CountingOp<Sum>;
  static_assert(InvertibleOp<CSum>);
  OpCounter::Reset();
  auto v = CSum::combine(1.0, 2.0);
  v = CSum::combine(v, 3.0);
  v = CSum::inverse(v, 1.0);
  EXPECT_EQ(OpCounter::combines, 2u);
  EXPECT_EQ(OpCounter::inverses, 1u);
  EXPECT_EQ(OpCounter::Total(), 3u);
  EXPECT_DOUBLE_EQ(v, 5.0);
  OpCounter::Reset();
  EXPECT_EQ(OpCounter::Total(), 0u);
}

TEST(CountingOpTest, PreservesTraits) {
  using CMax = CountingOp<Max>;
  static_assert(SelectiveOp<CMax>);
  static_assert(!InvertibleOp<CMax>);
  EXPECT_STREQ(CMax::kName, "max");
}

}  // namespace
}  // namespace slick::ops
