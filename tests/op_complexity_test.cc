// Empirical verification of Table 1 (paper §4.1): the number of aggregate
// operations (⊕/⊖ applications, counted via CountingOp) per slide, for each
// algorithm, in the single-query and max-multi-query environments. These
// are the paper's analytical claims turned into assertions.

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/slick_deque_inv.h"
#include "core/slick_deque_noninv.h"
#include "core/windowed.h"
#include "ops/arith.h"
#include "ops/counting.h"
#include "ops/minmax.h"
#include "util/math.h"
#include "util/rng.h"
#include "window/b_int.h"
#include "window/daba.h"
#include "window/flat_fat.h"
#include "window/flat_fit.h"
#include "window/naive.h"
#include "window/two_stacks.h"

namespace slick {
namespace {

using ops::OpCounter;
using CSum = ops::CountingOp<ops::SumInt>;
using CMax = ops::CountingOp<ops::MaxInt>;

struct OpStats {
  double amortized = 0.0;
  uint64_t worst = 0;
};

template <typename Agg, typename Make, typename Answer>
OpStats Measure(std::size_t n, Make make, Answer answer, uint64_t laps = 6,
                uint64_t seed = 99) {
  using Op = typename Agg::op_type;
  Agg agg = make(n);
  util::SplitMix64 rng(seed);
  auto next = [&] { return static_cast<int64_t>(rng.NextBounded(100000)); };
  for (std::size_t i = 0; i < n; ++i) agg.slide(Op::lift(next()));
  OpCounter::Reset();
  OpStats stats;
  uint64_t total = 0;
  const uint64_t slides = laps * n;
  for (uint64_t i = 0; i < slides; ++i) {
    const uint64_t before = OpCounter::Total();
    agg.slide(Op::lift(next()));
    answer(agg);
    const uint64_t per = OpCounter::Total() - before;
    stats.worst = std::max(stats.worst, per);
    total += per;
  }
  stats.amortized = static_cast<double>(total) / static_cast<double>(slides);
  return stats;
}

template <typename Agg>
Agg MakeWindow(std::size_t n) {
  return Agg(n);
}

const auto kFullQuery = [](auto& agg) { (void)agg.query(); };

class OpComplexitySweep : public ::testing::TestWithParam<std::size_t> {};
INSTANTIATE_TEST_SUITE_P(Windows, OpComplexitySweep,
                         ::testing::Values(8, 16, 64, 128, 256, 1024),
                         [](const auto& tpi) {
                           std::string name("n");
                           name += std::to_string(tpi.param);
                           return name;
                         });

// --------------------------- single query --------------------------------

TEST_P(OpComplexitySweep, NaiveIsExactlyNMinusOne) {
  const std::size_t n = GetParam();
  const OpStats s = Measure<window::NaiveWindow<CSum>>(
      n, MakeWindow<window::NaiveWindow<CSum>>, kFullQuery);
  EXPECT_DOUBLE_EQ(s.amortized, static_cast<double>(n - 1));
  EXPECT_EQ(s.worst, n - 1);
}

TEST_P(OpComplexitySweep, FlatFatIsLogN) {
  const std::size_t n = GetParam();  // powers of two: exactly log2(n)
  const OpStats s = Measure<window::FlatFat<CSum>>(
      n, MakeWindow<window::FlatFat<CSum>>, kFullQuery);
  EXPECT_DOUBLE_EQ(s.amortized, static_cast<double>(util::CeilLog2(n)));
  EXPECT_EQ(s.worst, util::CeilLog2(n));
}

TEST_P(OpComplexitySweep, BIntIsOrderLogN) {
  const std::size_t n = GetParam();
  const OpStats s = Measure<window::BInt<CSum>>(
      n, MakeWindow<window::BInt<CSum>>, kFullQuery);
  // log2(n) for the update; the lookup adds a bounded constant factor.
  EXPECT_GE(s.amortized, static_cast<double>(util::CeilLog2(n)));
  EXPECT_LE(s.worst, 3 * util::CeilLog2(n) + 3);
}

TEST_P(OpComplexitySweep, FlatFitAmortizedConstantWorstLinear) {
  const std::size_t n = GetParam();
  const OpStats s = Measure<window::FlatFit<CSum>>(
      n, MakeWindow<window::FlatFit<CSum>>, kFullQuery);
  // Paper: amortized 3 (its accounting charges the window reset n-1; our
  // reset also pays ~n-2 path-compression combines, and each steady slide
  // costs 4: two traversal hops, the answer, one re-compression). The
  // bound that matters — amortized O(1), independent of n — holds.
  EXPECT_LE(s.amortized, 7.0);
  EXPECT_GE(s.amortized, 3.0);
  EXPECT_GE(s.worst, n / 2);  // the cyclical window reset
  EXPECT_LE(s.worst, 2 * n);
}

TEST_P(OpComplexitySweep, TwoStacksAmortizedThreeWorstN) {
  const std::size_t n = GetParam();
  const OpStats s = Measure<core::Windowed<window::TwoStacks<CSum>>>(
      n, MakeWindow<core::Windowed<window::TwoStacks<CSum>>>, kFullQuery);
  EXPECT_LE(s.amortized, 3.5);  // paper: amortized 3
  EXPECT_GE(s.worst, n - 1);    // the flip
  EXPECT_LE(s.worst, n + 3);
}

TEST_P(OpComplexitySweep, DabaWorstCaseConstant) {
  const std::size_t n = GetParam();
  const OpStats s = Measure<core::Windowed<window::Daba<CSum>>>(
      n, MakeWindow<core::Windowed<window::Daba<CSum>>>, kFullQuery);
  EXPECT_LE(s.amortized, 6.0);  // paper: amortized 5
  EXPECT_LE(s.worst, 8u);       // paper: worst 8 — THE DABA GUARANTEE
  EXPECT_GE(s.amortized, 3.0);  // de-amortization is not free
}

TEST_P(OpComplexitySweep, SlickDequeInvIsExactlyTwo) {
  const std::size_t n = GetParam();
  const OpStats s = Measure<core::SlickDequeInv<CSum>>(
      n, MakeWindow<core::SlickDequeInv<CSum>>, kFullQuery);
  EXPECT_DOUBLE_EQ(s.amortized, 2.0);  // paper: exactly 2 (one ⊕, one ⊖)
  EXPECT_EQ(s.worst, 2u);
}

TEST_P(OpComplexitySweep, SlickDequeNonInvAmortizedBelowTwo) {
  const std::size_t n = GetParam();
  const OpStats s = Measure<core::SlickDequeNonInv<CMax>>(
      n, MakeWindow<core::SlickDequeNonInv<CMax>>, kFullQuery);
  EXPECT_LT(s.amortized, 2.0);  // paper: always < 2, input-dependent
  EXPECT_LE(s.worst, n);
}

TEST(OpComplexityTest, SlickDequeNonInvWorstCaseNeedsAdversarialInput) {
  // A descending window followed by a dominating value costs ~n in one
  // slide (paper: probability 1/n! under uniform input).
  const std::size_t n = 64;
  core::SlickDequeNonInv<CMax> agg(n);
  for (std::size_t i = 0; i < n; ++i) {
    agg.slide(static_cast<int64_t>(1000000 - i));
  }
  OpCounter::Reset();
  agg.slide(static_cast<int64_t>(2000000));
  EXPECT_GE(OpCounter::Total(), n - 1);
}

TEST(OpComplexityTest, SlickDequeNonInvWorstStaysFarBelowWindow) {
  // §4.1 summary: a slide costing k ops needs k+1 suitably ordered inputs
  // (probability ~1/(k+1)! each step), so bursts above DABA's bound of 8
  // happen occasionally but the window-sized worst case is vanishingly
  // rare on random data.
  const OpStats slick = Measure<core::SlickDequeNonInv<CMax>>(
      256, MakeWindow<core::SlickDequeNonInv<CMax>>, kFullQuery, 20);
  EXPECT_LE(slick.worst, 32u);
  EXPECT_LT(slick.amortized, 2.0);
}

// --------------------------- max-multi-query ------------------------------

template <typename Agg>
OpStats MeasureMulti(std::size_t n) {
  auto all_ranges = [n](auto& agg) {
    for (std::size_t r = n; r >= 1; --r) (void)agg.query(r);
  };
  return Measure<Agg>(n, MakeWindow<Agg>, all_ranges);
}

TEST_P(OpComplexitySweep, MultiNaiveIsQuadratic) {
  const std::size_t n = GetParam();
  if (n > 256) GTEST_SKIP() << "quadratic cost";
  const OpStats s = MeasureMulti<window::NaiveWindow<CSum>>(n);
  const double expected =
      static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  EXPECT_DOUBLE_EQ(s.amortized, expected);  // paper: n²/2 - n/2 exactly
}

TEST_P(OpComplexitySweep, MultiFlatFitIsNMinusOne) {
  const std::size_t n = GetParam();
  if (n > 256) GTEST_SKIP() << "keep test time bounded";
  const OpStats s = MeasureMulti<window::FlatFit<CSum>>(n);
  // Paper: n-1 ops per slide once the structure is maximally updated; our
  // per-range traversals add a constant factor (~3n) but stay linear, far
  // below FlatFAT's n*log(n) and Naive's n^2/2.
  EXPECT_LE(s.amortized, 3.2 * static_cast<double>(n));
  EXPECT_GE(s.amortized, static_cast<double>(n) - 1.0);
}

TEST_P(OpComplexitySweep, MultiFlatFatIsNLogN) {
  const std::size_t n = GetParam();
  if (n > 256) GTEST_SKIP() << "keep test time bounded";
  const OpStats s = MeasureMulti<window::FlatFat<CSum>>(n);
  const double nlogn =
      static_cast<double>(n) * static_cast<double>(util::CeilLog2(n));
  EXPECT_LE(s.amortized, nlogn + static_cast<double>(n));
  EXPECT_GE(s.amortized, nlogn / 4);
}

TEST_P(OpComplexitySweep, MultiSlickDequeInvIsExactlyTwoN) {
  const std::size_t n = GetParam();
  if (n > 256) GTEST_SKIP() << "keep test time bounded";
  auto make = [](std::size_t w) {
    std::vector<std::size_t> ranges(w);
    for (std::size_t r = 1; r <= w; ++r) ranges[r - 1] = r;
    return core::SlickDequeInv<CSum>(w, std::move(ranges));
  };
  auto drain = [](core::SlickDequeInv<CSum>& agg) {
    agg.for_each_answer([](std::size_t, int64_t) {});
  };
  const OpStats s = Measure<core::SlickDequeInv<CSum>>(n, make, drain);
  EXPECT_DOUBLE_EQ(s.amortized, 2.0 * static_cast<double>(n));  // paper: 2n
  EXPECT_EQ(s.worst, 2 * n);
}

TEST_P(OpComplexitySweep, MultiSlickDequeNonInvAtMostTwoN) {
  const std::size_t n = GetParam();
  if (n > 256) GTEST_SKIP() << "keep test time bounded";
  std::vector<std::size_t> ranges_desc(n);
  for (std::size_t r = 0; r < n; ++r) ranges_desc[r] = n - r;
  std::vector<int64_t> out;
  auto drain = [&](core::SlickDequeNonInv<CMax>& agg) {
    out.clear();
    agg.query_multi(ranges_desc, out);
  };
  const OpStats s = Measure<core::SlickDequeNonInv<CMax>>(
      n, MakeWindow<core::SlickDequeNonInv<CMax>>, drain);
  // Answering costs ZERO aggregate operations — only the deque maintenance
  // counts, which stays below 2 per slide regardless of the query load.
  EXPECT_LT(s.amortized, 2.0);
  EXPECT_LE(s.worst, 2 * n);
}

}  // namespace
}  // namespace slick
