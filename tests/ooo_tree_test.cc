// OooTree tests: differential fuzz against a sorted std::multimap oracle
// over random insert/evict/bulk-evict interleavings for every op class
// (invertible, selective non-invertible, non-commutative string), plus
// range queries, bulk-insert span equivalence, structural invariants, and
// framed checkpoint round-trips (DESIGN.md §13).

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "ops/arith.h"
#include "ops/minmax.h"
#include "ops/string_ops.h"
#include "util/rng.h"
#include "util/serde.h"
#include "window/ooo_tree.h"

namespace slick::window {
namespace {

// ---------------------------------------------------------------------
// Oracle: a sorted multimap of (t, lifted value) in arrival order. Equal
// timestamps fold together in arrival order at query time, matching the
// tree's merge-on-insert semantics; everything is recomputed from scratch
// so the oracle cannot share a bug with the tree.
// ---------------------------------------------------------------------
template <typename Op>
struct Oracle {
  using V = typename Op::value_type;
  std::multimap<uint64_t, V> entries;

  void Insert(uint64_t t, V v) { entries.emplace(t, std::move(v)); }

  bool Evict(uint64_t t) {
    auto [lo, hi] = entries.equal_range(t);
    if (lo == hi) return false;
    entries.erase(lo, hi);
    return true;
  }

  std::size_t BulkEvict(uint64_t watermark) {
    std::size_t distinct = 0;
    uint64_t prev = 0;
    bool first = true;
    auto it = entries.begin();
    while (it != entries.end() && it->first < watermark) {
      if (first || it->first != prev) ++distinct;
      prev = it->first;
      first = false;
      it = entries.erase(it);
    }
    return distinct;
  }

  V RangeFold(uint64_t lo, uint64_t hi, bool* have) const {
    V acc = Op::identity();
    *have = false;
    for (const auto& [t, v] : entries) {
      if (t < lo || t > hi) continue;
      acc = Op::combine(std::move(acc), v);
      *have = true;
    }
    return acc;
  }

  typename Op::result_type Query() const {
    bool have = false;
    return Op::lower(RangeFold(0, ~uint64_t{0}, &have));
  }

  std::size_t DistinctKeys() const {
    std::size_t n = 0;
    for (auto it = entries.begin(); it != entries.end();
         it = entries.upper_bound(it->first)) {
      ++n;
    }
    return n;
  }
};

// Per-op random value generators (exactly comparable types only, so the
// differential checks can use operator==).
template <typename Op>
typename Op::value_type RandomValue(util::SplitMix64& rng);

template <>
int64_t RandomValue<ops::SumInt>(util::SplitMix64& rng) {
  return static_cast<int64_t>(rng.NextBounded(2001)) - 1000;
}
template <>
int64_t RandomValue<ops::MaxInt>(util::SplitMix64& rng) {
  return static_cast<int64_t>(rng.NextBounded(1000000));
}
std::string RandomString(util::SplitMix64& rng) {
  const std::size_t len = 1 + rng.NextBounded(3);
  std::string s;
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>('a' + rng.NextBounded(26)));
  }
  return s;
}
template <>
std::string RandomValue<ops::Concat>(util::SplitMix64& rng) {
  return RandomString(rng);
}
template <>
std::string RandomValue<ops::AlphaMax>(util::SplitMix64& rng) {
  return RandomString(rng);
}

template <typename Op, std::size_t MinArity>
void ExpectTreeMatchesOracle(const OooTree<Op, MinArity>& tree,
                             const Oracle<Op>& oracle, uint64_t seed,
                             const char* where) {
  ASSERT_TRUE(tree.CheckInvariants()) << Op::kName << " " << where;
  ASSERT_EQ(tree.size(), oracle.DistinctKeys()) << Op::kName << " " << where;
  EXPECT_EQ(tree.query(), oracle.Query()) << Op::kName << " " << where;
  if (oracle.entries.empty()) return;
  EXPECT_EQ(tree.oldest(), oracle.entries.begin()->first);
  EXPECT_EQ(tree.newest(), oracle.entries.rbegin()->first);
  // A few random range queries per checkpoint, including empty ranges.
  util::SplitMix64 rng(seed);
  const uint64_t max_t = oracle.entries.rbegin()->first;
  for (int q = 0; q < 4; ++q) {
    uint64_t lo = rng.NextBounded(max_t + 10);
    uint64_t hi = lo + rng.NextBounded(max_t / 2 + 10);
    bool oracle_have = false;
    const auto expect = Op::lower(oracle.RangeFold(lo, hi, &oracle_have));
    typename Op::value_type acc = Op::identity();
    const bool have = tree.RangeAggregate(lo, hi, &acc);
    EXPECT_EQ(have, oracle_have)
        << Op::kName << " range [" << lo << "," << hi << "] " << where;
    EXPECT_EQ(Op::lower(acc), expect)
        << Op::kName << " range [" << lo << "," << hi << "] " << where;
  }
}

/// The core differential fuzz: random interleavings of in-order inserts,
/// out-of-order inserts (>= ~35% of traffic, well above the 10% bar),
/// exact evictions, and watermark bulk evictions, validated against the
/// oracle after every step.
template <typename Op, std::size_t MinArity>
void FuzzAgainstOracle(uint64_t seed, std::size_t steps) {
  util::SplitMix64 rng(seed);
  OooTree<Op, MinArity> tree;
  Oracle<Op> oracle;
  uint64_t clock = 0;  // the in-order frontier

  for (std::size_t step = 0; step < steps; ++step) {
    const uint64_t dice = rng.NextBounded(100);
    if (dice < 35) {  // in-order insert (sometimes a duplicate timestamp)
      clock += rng.NextBounded(3);
      auto v = RandomValue<Op>(rng);
      tree.Insert(clock, v);
      oracle.Insert(clock, v);
    } else if (dice < 70) {  // out-of-order insert at distance up to 64
      const uint64_t d = 1 + rng.NextBounded(64);
      const uint64_t t = clock > d ? clock - d : 0;
      auto v = RandomValue<Op>(rng);
      tree.Insert(t, v);
      oracle.Insert(t, v);
    } else if (dice < 85) {  // exact eviction (existing or missing key)
      uint64_t t;
      if (!oracle.entries.empty() && rng.NextBounded(4) != 0) {
        auto it = oracle.entries.begin();
        std::advance(it, static_cast<std::ptrdiff_t>(
                             rng.NextBounded(oracle.entries.size())));
        t = it->first;
      } else {
        t = rng.NextBounded(clock + 2);
      }
      EXPECT_EQ(tree.Evict(t), oracle.Evict(t)) << Op::kName << " t=" << t;
    } else if (dice < 92) {  // watermark bulk eviction
      const uint64_t span = tree.empty() ? 0 : tree.newest() - tree.oldest();
      const uint64_t w =
          tree.empty() ? clock : tree.oldest() + rng.NextBounded(span + 2);
      EXPECT_EQ(tree.BulkEvict(w), oracle.BulkEvict(w))
          << Op::kName << " w=" << w;
    } else {  // bulk insert of a small span (mostly sorted, some stragglers)
      std::vector<Timed<typename Op::value_type>> span(1 +
                                                       rng.NextBounded(24));
      uint64_t t = clock;
      for (auto& e : span) {
        if (rng.NextBounded(100) < 20 && t > 16) {
          e.t = t - 1 - rng.NextBounded(16);  // straggler inside the span
        } else {
          t += rng.NextBounded(3);
          e.t = t;
        }
        e.v = RandomValue<Op>(rng);
        oracle.Insert(e.t, e.v);
      }
      clock = std::max(clock, t);
      tree.BulkInsert(span.data(), span.size());
    }
    ASSERT_NO_FATAL_FAILURE(
        ExpectTreeMatchesOracle(tree, oracle, seed ^ step, "fuzz step"));
  }
}

TEST(OooTreeTest, InOrderInsertAndQuery) {
  OooTree<ops::SumInt> tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.query(), 0);
  int64_t sum = 0;
  for (uint64_t t = 0; t < 500; ++t) {
    tree.Insert(t, static_cast<int64_t>(t));
    sum += static_cast<int64_t>(t);
    ASSERT_EQ(tree.query(), sum);
  }
  EXPECT_EQ(tree.size(), 500u);
  EXPECT_EQ(tree.oldest(), 0u);
  EXPECT_EQ(tree.newest(), 499u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(OooTreeTest, EqualTimestampsMergeInArrivalOrder) {
  OooTree<ops::Concat> tree;
  tree.Insert(5, "a");
  tree.Insert(7, "x");
  tree.Insert(5, "b");  // merges into t=5 as "ab"
  tree.Insert(3, "0");
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(tree.query(), "0abx");
  EXPECT_EQ(tree.RangeQuery(5, 5), "ab");
}

TEST(OooTreeTest, BulkEvictAdvancesWindow) {
  OooTree<ops::MaxInt, 2> tree;  // tiny arity: constant rebalancing
  for (uint64_t t = 0; t < 300; ++t) {
    tree.Insert(t, static_cast<int64_t>((t * 37) % 101));
  }
  EXPECT_EQ(tree.BulkEvict(0), 0u) << "watermark below oldest is a no-op";
  EXPECT_EQ(tree.BulkEvict(100), 100u);
  EXPECT_EQ(tree.oldest(), 100u);
  EXPECT_TRUE(tree.CheckInvariants());
  // Whole-tree eviction, then reuse.
  EXPECT_EQ(tree.BulkEvict(1000), 200u);
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.CheckInvariants());
  tree.Insert(2000, 5);
  EXPECT_EQ(tree.query(), 5);
}

TEST(OooTreeTest, RangeQueryRespectsStreamOrderForNonCommutativeOps) {
  // Concat is the order-correctness probe: any combine out of time order
  // is visible in the output string.
  OooTree<ops::Concat, 2> tree;
  std::string expect;
  for (uint64_t t = 0; t < 26; ++t) {
    expect.push_back(static_cast<char>('a' + t));
  }
  // Insert every even timestamp first, then the odds out of order.
  for (uint64_t t = 0; t < 26; t += 2) {
    tree.Insert(t, std::string(1, static_cast<char>('a' + t)));
  }
  for (uint64_t t = 25; t < 26; t -= 2) {
    tree.Insert(t, std::string(1, static_cast<char>('a' + t)));
  }
  EXPECT_EQ(tree.query(), expect);
  EXPECT_EQ(tree.RangeQuery(10, 15), expect.substr(10, 6));
  EXPECT_EQ(tree.RangeQuery(0, 25), expect);
  EXPECT_EQ(tree.RangeQuery(26, 99), "");
}

TEST(OooTreeTest, DifferentialFuzzInvertibleOp) {
  FuzzAgainstOracle<ops::SumInt, 2>(101, 600);
  FuzzAgainstOracle<ops::SumInt, 8>(102, 600);
}

TEST(OooTreeTest, DifferentialFuzzSelectiveOp) {
  FuzzAgainstOracle<ops::MaxInt, 2>(201, 600);
  FuzzAgainstOracle<ops::MaxInt, 8>(202, 600);
}

TEST(OooTreeTest, DifferentialFuzzNonCommutativeStringOp) {
  FuzzAgainstOracle<ops::Concat, 2>(301, 400);
  FuzzAgainstOracle<ops::Concat, 8>(302, 400);
}

TEST(OooTreeTest, DifferentialFuzzSelectiveStringOp) {
  FuzzAgainstOracle<ops::AlphaMax, 2>(401, 400);
  FuzzAgainstOracle<ops::AlphaMax, 8>(402, 400);
}

TEST(OooTreeTest, BulkInsertMatchesElementwiseInsert) {
  // A span with ~25% out-of-order traffic must land identically to the
  // per-element path — same structure-independent answers, same entries.
  util::SplitMix64 rng(77);
  std::vector<Timed<int64_t>> span(4000);
  uint64_t t = 0;
  for (auto& e : span) {
    if (rng.NextBounded(4) == 0 && t > 100) {
      e.t = t - 1 - rng.NextBounded(100);
    } else {
      t += 1 + rng.NextBounded(2);
      e.t = t;
    }
    e.v = static_cast<int64_t>(rng.NextBounded(1000));
  }
  OooTree<ops::SumInt> bulk;
  bulk.BulkInsert(span.data(), span.size());
  OooTree<ops::SumInt> scalar;
  for (const auto& e : span) scalar.Insert(e.t, e.v);
  EXPECT_TRUE(bulk.CheckInvariants());
  EXPECT_EQ(bulk.size(), scalar.size());
  EXPECT_EQ(bulk.query(), scalar.query());
  std::vector<std::pair<uint64_t, int64_t>> a, b;
  bulk.ForEachEntry([&](uint64_t tt, int64_t v) { a.emplace_back(tt, v); });
  scalar.ForEachEntry([&](uint64_t tt, int64_t v) { b.emplace_back(tt, v); });
  EXPECT_EQ(a, b);
}

template <typename Op>
void CheckpointRoundTrip(uint64_t seed) {
  util::SplitMix64 rng(seed);
  OooTree<Op, 4> tree;
  uint64_t clock = 0;
  for (int i = 0; i < 700; ++i) {
    if (rng.NextBounded(3) == 0 && clock > 40) {
      tree.Insert(clock - 1 - rng.NextBounded(40), RandomValue<Op>(rng));
    } else {
      clock += rng.NextBounded(3);
      tree.Insert(clock, RandomValue<Op>(rng));
    }
  }
  tree.BulkEvict(clock / 4);

  std::ostringstream out;
  util::SaveStateFramed(tree, out);
  const std::string bytes = out.str();

  OooTree<Op, 4> restored;
  std::istringstream in(bytes);
  ASSERT_EQ(util::LoadStateFramed(&restored, in), util::FrameError::kOk);
  EXPECT_TRUE(restored.CheckInvariants());
  EXPECT_EQ(restored.size(), tree.size());
  EXPECT_EQ(restored.query(), tree.query());
  std::vector<std::pair<uint64_t, typename Op::value_type>> a, b;
  tree.ForEachEntry([&](uint64_t t, const auto& v) { a.emplace_back(t, v); });
  restored.ForEachEntry(
      [&](uint64_t t, const auto& v) { b.emplace_back(t, v); });
  EXPECT_EQ(a, b);

  // The serialized form is a pure function of content: re-saving the
  // restored replica reproduces the exact bytes (what makes supervised
  // recovery checkpoints bit-identical).
  std::ostringstream out2;
  util::SaveStateFramed(restored, out2);
  EXPECT_EQ(out2.str(), bytes);

  // Corruption anywhere in the frame is detected, never half-applied.
  std::string corrupt = bytes;
  corrupt[corrupt.size() / 2] ^= 0x20;
  OooTree<Op, 4> victim;
  std::istringstream bad(corrupt);
  EXPECT_NE(util::LoadStateFramed(&victim, bad), util::FrameError::kOk);
}

TEST(OooTreeTest, CheckpointRoundTripPodValues) {
  CheckpointRoundTrip<ops::SumInt>(11);
  CheckpointRoundTrip<ops::MaxInt>(12);
}

TEST(OooTreeTest, CheckpointRoundTripStringValues) {
  CheckpointRoundTrip<ops::Concat>(13);
  CheckpointRoundTrip<ops::AlphaMax>(14);
}

TEST(OooTreeTest, MemoryBytesGrowsAndShrinks) {
  OooTree<ops::SumInt> tree;
  const std::size_t empty_bytes = tree.memory_bytes();
  for (uint64_t t = 0; t < 10000; ++t) tree.Insert(t, 1);
  const std::size_t full_bytes = tree.memory_bytes();
  EXPECT_GT(full_bytes, empty_bytes);
  tree.BulkEvict(10000);
  EXPECT_LT(tree.memory_bytes(), full_bytes);
}

}  // namespace
}  // namespace slick::window
