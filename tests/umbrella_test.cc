// Compile-and-smoke test for the umbrella header: one include must expose
// the whole public API.

#include "slickdeque.h"

#include <gtest/gtest.h>

namespace {

TEST(UmbrellaHeaderTest, ExposesTheApi) {
  slick::core::WindowAggregatorFor<slick::ops::Sum> sum(8);
  slick::core::WindowAggregatorFor<slick::ops::Max> max(8);
  slick::engine::TimeEngineFor<slick::ops::Sum> timed({{20, 10}},
                                                      slick::plan::Pat::kPairs);
  slick::window::HistoryTree<slick::ops::SumInt> history;
  slick::engine::RoundRobinSharded<slick::core::SlickDequeInv<slick::ops::Sum>>
      sharded(8, 2);

  for (int i = 1; i <= 8; ++i) {
    sum.slide(static_cast<double>(i));
    max.slide(static_cast<double>(i));
    history.Append(i);
    sharded.slide(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(sum.query(), 36.0);
  EXPECT_DOUBLE_EQ(max.query(), 8.0);
  EXPECT_EQ(history.QuerySuffix(8), 36);
  EXPECT_DOUBLE_EQ(sharded.query(), 36.0);
  timed.Observe(5, 1.0, [](uint32_t, double) {});

  slick::core::AnyWindowAggregator any =
      slick::core::AnyWindowAggregator::Make(slick::core::OpKind::kRange, 4);
  any.slide(1.0);
  any.slide(5.0);
  EXPECT_DOUBLE_EQ(any.query(), 4.0);
}

}  // namespace
