// Typed property tests: every aggregate operation in the library must
// satisfy its declared algebraic contract — associativity, identity
// neutrality, commutativity iff kCommutative, selectivity iff kSelective,
// inverse round trips iff kInvertible, and Absorbs<> consistency — under
// randomized values. A new op added to the type list gets the full battery
// for free.

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "ops/maxcount.h"
#include "ops/ops.h"
#include "ops/sketch.h"
#include "util/rng.h"

namespace slick::ops {
namespace {

// Random value generation per input domain.
template <typename Op>
typename Op::value_type RandomValue(util::SplitMix64& rng) {
  using In = typename Op::input_type;
  if constexpr (std::is_same_v<In, std::string>) {
    std::string s(1 + rng.NextBounded(4), 'a');
    for (char& c : s) c = static_cast<char>('a' + rng.NextBounded(26));
    return Op::lift(s);
  } else if constexpr (std::is_same_v<In, ArgSample>) {
    return Op::lift(ArgSample{static_cast<double>(rng.NextBounded(1000)),
                              rng.NextU64()});
  } else if constexpr (std::is_same_v<In, bool>) {
    return Op::lift(rng.NextBounded(2) == 1);
  } else if constexpr (std::is_same_v<In, uint64_t>) {
    return Op::lift(rng.NextBounded(64));
  } else {
    // Numeric: strictly positive keeps Product/GeoMean exact & finite.
    return Op::lift(static_cast<In>(1 + rng.NextBounded(1000)));
  }
}

// Value equality: the library requires operator== only for selective ops;
// for the rest, compare through lower() where possible, else operator==.
template <typename Op>
bool Equal(const typename Op::value_type& a, const typename Op::value_type& b) {
  if constexpr (std::equality_comparable<typename Op::value_type>) {
    return a == b;
  } else {
    return Op::lower(a) == Op::lower(b);
  }
}

template <typename Op>
class OpContractTest : public ::testing::Test {};

using AllOps =
    ::testing::Types<Sum, SumInt, Count, Product, SumOfSquares, Max, Min,
                     MaxInt, ArgMax, ArgMin, First, Last, AlphaMax, Concat,
                     BoolAnd, BoolOr, Average, StdDev, GeoMean, SumCount,
                     BloomSketch, MaxCount>;
TYPED_TEST_SUITE(OpContractTest, AllOps);

TYPED_TEST(OpContractTest, Associativity) {
  using Op = TypeParam;
  util::SplitMix64 rng(1);
  for (int i = 0; i < 300; ++i) {
    const auto x = RandomValue<Op>(rng);
    const auto y = RandomValue<Op>(rng);
    const auto z = RandomValue<Op>(rng);
    const auto lhs = Op::combine(Op::combine(x, y), z);
    const auto rhs = Op::combine(x, Op::combine(y, z));
    if constexpr (std::is_same_v<Op, GeoMean>) {
      // log-sums regroup with floating rounding; associativity holds
      // mathematically and to ~1 ulp numerically.
      ASSERT_NEAR(Op::lower(lhs), Op::lower(rhs),
                  1e-12 * (1.0 + Op::lower(lhs)))
          << Op::kName << " trial " << i;
    } else {
      ASSERT_TRUE(Equal<Op>(lhs, rhs)) << Op::kName << " trial " << i;
    }
  }
}

TYPED_TEST(OpContractTest, IdentityIsNeutral) {
  using Op = TypeParam;
  util::SplitMix64 rng(2);
  for (int i = 0; i < 100; ++i) {
    const auto x = RandomValue<Op>(rng);
    ASSERT_TRUE(Equal<Op>(Op::combine(Op::identity(), x), x)) << Op::kName;
    ASSERT_TRUE(Equal<Op>(Op::combine(x, Op::identity()), x)) << Op::kName;
  }
}

TYPED_TEST(OpContractTest, CommutativityMatchesTrait) {
  using Op = TypeParam;
  if constexpr (Op::kCommutative) {
    util::SplitMix64 rng(3);
    for (int i = 0; i < 300; ++i) {
      const auto x = RandomValue<Op>(rng);
      const auto y = RandomValue<Op>(rng);
      ASSERT_TRUE(Equal<Op>(Op::combine(x, y), Op::combine(y, x)))
          << Op::kName;
    }
  } else {
    // Must exhibit at least one non-commuting pair, otherwise the trait is
    // needlessly pessimistic.
    util::SplitMix64 rng(3);
    bool found = false;
    for (int i = 0; i < 2000 && !found; ++i) {
      const auto x = RandomValue<Op>(rng);
      const auto y = RandomValue<Op>(rng);
      found = !Equal<Op>(Op::combine(x, y), Op::combine(y, x));
    }
    EXPECT_TRUE(found) << Op::kName << " is marked non-commutative but no "
                       << "counterexample found";
  }
}

TYPED_TEST(OpContractTest, SelectivityMatchesTrait) {
  using Op = TypeParam;
  if constexpr (Op::kSelective) {
    util::SplitMix64 rng(4);
    for (int i = 0; i < 300; ++i) {
      const auto x = RandomValue<Op>(rng);
      const auto y = RandomValue<Op>(rng);
      const auto c = Op::combine(x, y);
      ASSERT_TRUE(Equal<Op>(c, x) || Equal<Op>(c, y))
          << Op::kName << ": combine must select an argument";
    }
  }
}

TYPED_TEST(OpContractTest, InverseRoundTripsMatchTrait) {
  using Op = TypeParam;
  if constexpr (InvertibleOp<Op>) {
    util::SplitMix64 rng(5);
    for (int i = 0; i < 300; ++i) {
      const auto x = RandomValue<Op>(rng);
      const auto y = RandomValue<Op>(rng);
      const auto back = Op::inverse(Op::combine(x, y), y);
      if constexpr (std::is_same_v<Op, Product> || std::is_same_v<Op, GeoMean>) {
        // Floating division/log round trips approximately.
        ASSERT_NEAR(Op::lower(back), Op::lower(x),
                    1e-9 * (1.0 + std::abs(Op::lower(x))))
            << Op::kName;
      } else if constexpr (std::is_same_v<typename Op::value_type, double>) {
        ASSERT_NEAR(back, x, 1e-9) << Op::kName;
      } else {
        ASSERT_TRUE(Equal<Op>(back, x)) << Op::kName;
      }
    }
  }
}

TYPED_TEST(OpContractTest, AbsorbsAgreesWithCombine) {
  using Op = TypeParam;
  if constexpr (SelectiveOp<Op> &&
                std::equality_comparable<typename Op::value_type>) {
    util::SplitMix64 rng(6);
    for (int i = 0; i < 500; ++i) {
      const auto older = RandomValue<Op>(rng);
      const auto newer = RandomValue<Op>(rng);
      const bool absorbs = Absorbs<Op>(newer, older);
      const bool combine_selects_newer = Op::combine(older, newer) == newer;
      // absorbs may be conservatively false on ties, never wrongly true.
      if (absorbs) {
        ASSERT_TRUE(combine_selects_newer)
            << Op::kName << ": absorbs() returned true but combine keeps "
            << "the older value";
      }
    }
  }
}

TYPED_TEST(OpContractTest, LiftLowerRoundTripOnSingletons) {
  using Op = TypeParam;
  util::SplitMix64 rng(7);
  for (int i = 0; i < 50; ++i) {
    const auto v = RandomValue<Op>(rng);
    // lower(lift(x)) must be a fixed point under re-aggregation with
    // identity — i.e. lower() of a singleton window is stable.
    ASSERT_TRUE(
        Equal<Op>(Op::combine(v, Op::identity()), v))
        << Op::kName;
  }
}

}  // namespace
}  // namespace slick::ops
