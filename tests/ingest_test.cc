// Integration tests for the TCP front door (src/net/, DESIGN.md §14):
// multi-client round trips over loopback with per-client order checked
// against the sender's sequence, the full engine differential (clients →
// IngestServer → Producer handles → MPMC shard rings → event-time answer
// vs a serial oracle), the connection-fatal handling of every adversarial
// frame shape (bad magic, CRC corruption, truncation at EOF, oversize
// declared payloads, byte-at-a-time splits), the per-connection
// backpressure policies, and the telemetry JSON export.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/frame.h"
#include "net/ingest_client.h"
#include "net/ingest_server.h"
#include "ops/arith.h"
#include "runtime/mpmc_ring.h"
#include "runtime/parallel_engine.h"
#include "telemetry/json.h"
#include "util/rng.h"
#include "window/ooo_tree.h"

namespace slick {
namespace {

using net::FrameDecoder;
using net::IngestClient;
using net::IngestServer;
using net::WireTuple;

constexpr char kHost[] = "127.0.0.1";

/// Polls `cond` at 1ms until it holds or `timeout` passes. The server's
/// counters are monotonic, so polling them is race-free by construction.
bool WaitFor(const std::function<bool()>& cond,
             std::chrono::milliseconds timeout = std::chrono::seconds(10)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!cond()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

// ---------------------------------------------------------------------
// Round trip: several clients, several event loops, order and counts.
// ---------------------------------------------------------------------
TEST(IngestServerTest, MultiClientRoundTripKeepsPerClientOrder) {
  constexpr int kClients = 3;
  constexpr uint64_t kPerClient = 4000;
  constexpr int64_t kTag = 1'000'000;

  // One capture vector per event loop; each is written only by its owning
  // loop thread, and read by the test only after Stop() joins the loops.
  std::vector<std::vector<WireTuple>> sunk(2);
  IngestServer server(
      {.port = 0, .threads = 2},
      [&sunk](std::size_t loop) -> IngestServer::TrySink {
        return [&v = sunk[loop]](const WireTuple* t, std::size_t n) {
          v.insert(v.end(), t, t + n);
          return n;
        };
      });
  ASSERT_TRUE(server.Start());

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([c, port = server.port()] {
      IngestClient client;
      ASSERT_TRUE(client.Connect(kHost, port));
      util::SplitMix64 rng(static_cast<uint64_t>(c) + 5);
      std::vector<WireTuple> batch;
      uint64_t seq = 0;
      while (seq < kPerClient) {
        batch.clear();
        const uint64_t n = rng.NextBounded(50) + 1;
        for (uint64_t i = 0; i < n && seq < kPerClient; ++i, ++seq) {
          batch.push_back({seq, static_cast<double>(c * kTag +
                                                    static_cast<int64_t>(seq))});
        }
        ASSERT_TRUE(client.SendBatch(batch.data(), batch.size()));
      }
      client.CloseSend();
    });
  }
  for (auto& t : clients) t.join();

  ASSERT_TRUE(WaitFor([&server] {
    return server.snapshot().tuples_accepted == kClients * kPerClient;
  }));
  const telemetry::IngestSnapshot before = server.snapshot();
  EXPECT_EQ(before.connections_opened, static_cast<uint64_t>(kClients));
  EXPECT_EQ(before.tuples_dropped, 0u);
  EXPECT_EQ(before.frame_errors, 0u);
  EXPECT_GE(before.frames, static_cast<uint64_t>(kClients));  // >=1 each
  EXPECT_GT(before.ingest_latency_ns.total(), 0u);
  server.Stop();

  // Each client's tuples ride one connection, which lives on one loop, and
  // the loop sinks frames in order: within that loop's capture, the
  // client's subsequence must be exactly 0,1,2,...
  std::vector<uint64_t> next(kClients, 0);
  uint64_t total = 0;
  for (const auto& v : sunk) {
    for (const WireTuple& t : v) {
      const auto tagged = static_cast<int64_t>(t.v);
      const int64_t c = tagged / kTag;
      ASSERT_GE(c, 0);
      ASSERT_LT(c, kClients);
      ASSERT_EQ(static_cast<uint64_t>(tagged % kTag),
                next[static_cast<std::size_t>(c)]);
      ASSERT_EQ(t.ts, next[static_cast<std::size_t>(c)]);
      ++next[static_cast<std::size_t>(c)];
      ++total;
    }
  }
  EXPECT_EQ(total, kClients * kPerClient);
}

// ---------------------------------------------------------------------
// Full-stack differential: TCP clients → event loops → engine Producer
// handles → MPMC shard rings → event-time answer vs a serial oracle.
// ---------------------------------------------------------------------
TEST(IngestServerTest, EngineDifferentialOverTcp) {
  using Tree = window::OooTree<ops::SumInt>;
  using Engine = runtime::ParallelShardedEngine<Tree, runtime::MpmcRing>;
  constexpr int kClients = 3;
  constexpr std::size_t kPerClient = 3000;
  constexpr uint64_t kRange = 1 << 20;  // wider than any ts: window is [0, wm]

  // batch = 1: every push flushes straight to its shard ring, so no tuple
  // is ever parked in Producer staging when the test queries.
  Engine eng(kRange, /*shards=*/2,
             {.ring_capacity = 1 << 12, .batch = 1});
  IngestServer server(
      {.port = 0, .threads = 2},
      [&eng](std::size_t) -> IngestServer::TrySink {
        // One Producer handle per event loop, owned by the sink closure —
        // the wiring the class comment prescribes for MPMC engines.
        auto prod = std::make_shared<Engine::Producer>(eng.MakeProducer());
        return [prod](const WireTuple* t, std::size_t n) {
          for (std::size_t i = 0; i < n; ++i) {
            prod->push(t[i].ts, static_cast<int64_t>(t[i].v));
          }
          return n;
        };
      });
  ASSERT_TRUE(server.Start());

  std::vector<std::vector<WireTuple>> sent(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([c, &sent, port = server.port()] {
      util::SplitMix64 rng(static_cast<uint64_t>(c) * 31 + 3);
      std::vector<WireTuple>& mine = sent[static_cast<std::size_t>(c)];
      mine.reserve(kPerClient);
      for (std::size_t i = 0; i < kPerClient; ++i) {
        const uint64_t base = i + 1;
        const uint64_t jitter = rng.NextBounded(40);
        mine.push_back({base > jitter ? base - jitter : base,
                        static_cast<double>(rng.NextBounded(1000))});
      }
      IngestClient client;
      ASSERT_TRUE(client.Connect(kHost, port));
      std::size_t off = 0;
      while (off < mine.size()) {
        const std::size_t n = std::min<std::size_t>(rng.NextBounded(64) + 1,
                                                    mine.size() - off);
        ASSERT_TRUE(client.SendBatch(mine.data() + off, n));
        off += n;
      }
      client.CloseSend();
    });
  }
  for (auto& t : clients) t.join();

  // The caller-side quiesce protocol from IngestServer::Stop's contract:
  // wait until everything sent has been admitted, then stop.
  ASSERT_TRUE(WaitFor([&server] {
    return server.snapshot().tuples_accepted == kClients * kPerClient;
  }));
  server.Stop();

  const int64_t got = eng.query();
  const uint64_t wm = eng.watermark();
  int64_t expected = 0;
  for (const auto& mine : sent) {
    for (const WireTuple& t : mine) {
      if (t.ts <= wm) expected += static_cast<int64_t>(t.v);
    }
  }
  EXPECT_EQ(got, expected);
  const auto stats = eng.stats();
  EXPECT_EQ(stats.admitted, static_cast<uint64_t>(kClients) * kPerClient);
  EXPECT_EQ(stats.dropped, 0u);
  eng.stop();
}

// ---------------------------------------------------------------------
// Adversarial frames: every malformed shape closes ONLY the offending
// connection, with a typed count, while other connections keep serving.
// ---------------------------------------------------------------------

/// Spins up a single-loop capture server for the adversarial cases.
class AdversarialIngest {
 public:
  explicit AdversarialIngest(IngestServer::Options opt = {.port = 0,
                                                          .threads = 1})
      : server_(std::move(opt), [this](std::size_t) -> IngestServer::TrySink {
          return [this](const WireTuple* t, std::size_t n) {
            sunk_.insert(sunk_.end(), t, t + n);
            return n;
          };
        }) {
    started_ = server_.Start();
  }

  bool started() const { return started_; }
  IngestServer& server() { return server_; }
  /// Read only after Stop() (single loop thread writes it).
  const std::vector<WireTuple>& sunk() const { return sunk_; }

 private:
  std::vector<WireTuple> sunk_;
  IngestServer server_;
  bool started_ = false;
};

TEST(IngestServerTest, BadMagicClosesOnlyTheOffendingConnection) {
  AdversarialIngest rig;
  ASSERT_TRUE(rig.started());

  IngestClient bad;
  ASSERT_TRUE(bad.Connect(kHost, rig.server().port()));
  // Wrong protocol entirely; longer than a frame header so the decoder
  // actually inspects the magic rather than waiting for more bytes.
  const char garbage[] = "GET /stream HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_TRUE(bad.SendRaw(garbage, sizeof(garbage) - 1));

  ASSERT_TRUE(WaitFor([&rig] {
    return rig.server().snapshot().connections_closed_on_error == 1;
  }));

  // A well-behaved connection opened after the close still serves.
  IngestClient good;
  ASSERT_TRUE(good.Connect(kHost, rig.server().port()));
  const WireTuple t{42, 1.5};
  ASSERT_TRUE(good.SendBatch(&t, 1));
  ASSERT_TRUE(WaitFor(
      [&rig] { return rig.server().snapshot().tuples_accepted == 1; }));

  const telemetry::IngestSnapshot snap = rig.server().snapshot();
  EXPECT_EQ(snap.frame_errors, 1u);
  EXPECT_EQ(snap.connections_opened, 2u);
  EXPECT_EQ(snap.connections_open, 1u);
  // The closed connection is retained for post-mortem inspection.
  bool found_closed = false;
  for (const auto& c : snap.connections) {
    if (!c.open) {
      found_closed = true;
      EXPECT_EQ(c.frame_errors, 1u);
      EXPECT_EQ(c.tuples_accepted, 0u);
    }
  }
  EXPECT_TRUE(found_closed);
  rig.server().Stop();
}

TEST(IngestServerTest, CrcCorruptionDeliversNothingAndCloses) {
  AdversarialIngest rig;
  ASSERT_TRUE(rig.started());

  // A valid frame with one payload byte flipped: the header still parses,
  // the CRC check must reject the batch before any tuple surfaces.
  std::vector<WireTuple> batch(8);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i] = {i, static_cast<double>(i)};
  }
  std::string frame;
  net::EncodeBatch(batch.data(), batch.size(), &frame);
  frame[net::kFrameHeaderBytes + net::kBatchHeaderBytes + 3] ^= 0x40;

  IngestClient client;
  ASSERT_TRUE(client.Connect(kHost, rig.server().port()));
  ASSERT_TRUE(client.SendRaw(frame.data(), frame.size()));

  ASSERT_TRUE(WaitFor([&rig] {
    return rig.server().snapshot().connections_closed_on_error == 1;
  }));
  const telemetry::IngestSnapshot snap = rig.server().snapshot();
  EXPECT_EQ(snap.tuples_accepted, 0u);
  EXPECT_EQ(snap.frames, 0u);
  EXPECT_EQ(snap.frame_errors, 1u);
  rig.server().Stop();
  EXPECT_TRUE(rig.sunk().empty());  // no partial tuple ever reached the sink
}

TEST(IngestServerTest, TruncatedFrameAtEofCountsAsError) {
  AdversarialIngest rig;
  ASSERT_TRUE(rig.started());

  const WireTuple t{7, 3.25};
  std::string frame;
  net::EncodeBatch(&t, 1, &frame);

  IngestClient client;
  ASSERT_TRUE(client.Connect(kHost, rig.server().port()));
  // Half a frame, then EOF: bytes that can never complete a frame must be
  // classified as a truncated stream, not silently discarded.
  ASSERT_TRUE(client.SendRaw(frame.data(), frame.size() / 2));
  client.CloseSend();

  ASSERT_TRUE(WaitFor([&rig] {
    return rig.server().snapshot().connections_closed_on_error == 1;
  }));
  const telemetry::IngestSnapshot snap = rig.server().snapshot();
  EXPECT_EQ(snap.frame_errors, 1u);
  EXPECT_EQ(snap.tuples_accepted, 0u);
  rig.server().Stop();
}

TEST(IngestServerTest, OversizeDeclaredPayloadIsRejectedUpFront) {
  // Tight frame-size bound: a hostile length field must close the
  // connection at header-parse time, never allocate the declared size.
  AdversarialIngest rig({.port = 0, .threads = 1, .max_frame_bytes = 1024});
  ASSERT_TRUE(rig.started());

  std::string header;
  const uint32_t magic = util::kFrameMagic;
  const uint32_t version = util::kFrameVersion;
  const uint64_t absurd = uint64_t{1} << 40;  // a terabyte, declared
  const uint32_t crc = 0;
  header.append(reinterpret_cast<const char*>(&magic), 4);
  header.append(reinterpret_cast<const char*>(&version), 4);
  header.append(reinterpret_cast<const char*>(&absurd), 8);
  header.append(reinterpret_cast<const char*>(&crc), 4);

  IngestClient client;
  ASSERT_TRUE(client.Connect(kHost, rig.server().port()));
  ASSERT_TRUE(client.SendRaw(header.data(), header.size()));

  ASSERT_TRUE(WaitFor([&rig] {
    return rig.server().snapshot().connections_closed_on_error == 1;
  }));
  EXPECT_EQ(rig.server().snapshot().tuples_accepted, 0u);
  rig.server().Stop();
}

TEST(IngestServerTest, FramesSplitAcrossManyWritesReassemble) {
  AdversarialIngest rig;
  ASSERT_TRUE(rig.started());

  std::vector<WireTuple> batch(5);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i] = {i + 1, static_cast<double>(10 * i)};
  }
  std::string frames;
  net::EncodeBatch(batch.data(), 3, &frames);       // frame 1: 3 tuples
  net::EncodeBatch(batch.data() + 3, 2, &frames);   // frame 2: 2 tuples

  IngestClient client;
  ASSERT_TRUE(client.Connect(kHost, rig.server().port()));
  // Byte-at-a-time: every possible split point across both frames.
  for (char byte : frames) {
    ASSERT_TRUE(client.SendRaw(&byte, 1));
  }
  ASSERT_TRUE(WaitFor(
      [&rig] { return rig.server().snapshot().tuples_accepted == 5; }));
  const telemetry::IngestSnapshot snap = rig.server().snapshot();
  EXPECT_EQ(snap.frames, 2u);
  EXPECT_EQ(snap.frame_errors, 0u);
  rig.server().Stop();
  ASSERT_EQ(rig.sunk().size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(rig.sunk()[i].ts, i + 1);
    EXPECT_EQ(rig.sunk()[i].v, static_cast<double>(10 * i));
  }
}

// ---------------------------------------------------------------------
// Backpressure policies at the connection edge.
// ---------------------------------------------------------------------

TEST(IngestServerTest, BlockPolicyIsLosslessAgainstASlowSink) {
  constexpr uint64_t kTuples = 2000;
  // The sink accepts at most 3 tuples per call and refuses entirely on
  // three of four calls — the pending-buffer/pause/retry machinery must
  // deliver everything anyway, in order, dropping nothing.
  std::vector<WireTuple> sunk;
  uint64_t tick = 0;
  IngestServer server(
      {.port = 0, .threads = 1,
       .backpressure = runtime::Backpressure::kBlock},
      [&sunk, &tick](std::size_t) -> IngestServer::TrySink {
        return [&sunk, &tick](const WireTuple* t, std::size_t n) {
          if (++tick % 4 != 0) return std::size_t{0};
          const std::size_t take = std::min<std::size_t>(n, 3);
          sunk.insert(sunk.end(), t, t + take);
          return take;
        };
      });
  ASSERT_TRUE(server.Start());

  std::thread client_thread([port = server.port()] {
    IngestClient client;
    ASSERT_TRUE(client.Connect(kHost, port));
    std::vector<WireTuple> batch;
    for (uint64_t seq = 0; seq < kTuples;) {
      batch.clear();
      for (uint64_t i = 0; i < 64 && seq < kTuples; ++i, ++seq) {
        batch.push_back({seq, static_cast<double>(seq)});
      }
      ASSERT_TRUE(client.SendBatch(batch.data(), batch.size()));
    }
    client.CloseSend();
  });
  client_thread.join();

  ASSERT_TRUE(WaitFor([&server] {
    return server.snapshot().tuples_accepted == kTuples;
  }));
  EXPECT_EQ(server.snapshot().tuples_dropped, 0u);
  server.Stop();
  ASSERT_EQ(sunk.size(), kTuples);
  for (uint64_t i = 0; i < kTuples; ++i) EXPECT_EQ(sunk[i].ts, i);
}

TEST(IngestServerTest, DropNewestShedsTheRefusedRemainder) {
  // The sink takes the first 10 tuples ever, then refuses: under
  // kDropNewest every refused tuple is shed and counted immediately.
  uint64_t taken = 0;
  IngestServer server(
      {.port = 0, .threads = 1,
       .backpressure = runtime::Backpressure::kDropNewest},
      [&taken](std::size_t) -> IngestServer::TrySink {
        return [&taken](const WireTuple*, std::size_t n) {
          const std::size_t take = taken < 10 ? std::min<std::size_t>(
                                                    n, 10 - taken)
                                              : 0;
          taken += take;
          return take;
        };
      });
  ASSERT_TRUE(server.Start());

  IngestClient client;
  ASSERT_TRUE(client.Connect(kHost, server.port()));
  std::vector<WireTuple> batch(25);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i] = {i, static_cast<double>(i)};
  }
  ASSERT_TRUE(client.SendBatch(batch.data(), batch.size()));

  ASSERT_TRUE(WaitFor([&server] {
    const telemetry::IngestSnapshot s = server.snapshot();
    return s.tuples_accepted + s.tuples_dropped == 25;
  }));
  const telemetry::IngestSnapshot snap = server.snapshot();
  EXPECT_EQ(snap.tuples_accepted, 10u);
  EXPECT_EQ(snap.tuples_dropped, 15u);
  EXPECT_EQ(snap.connections_closed_on_error, 0u);  // shedding is not an error
  server.Stop();
}

TEST(IngestServerTest, DeadlinePolicyShedsStalePendingAndCounts) {
  // Sink refuses everything: under kBlockWithDeadline the pending buffer
  // must be shed (and counted) once it ages past the deadline, keeping the
  // connection alive rather than wedging it forever.
  IngestServer server(
      {.port = 0, .threads = 1,
       .backpressure = runtime::Backpressure::kBlockWithDeadline,
       .deadline_ns = 1'000'000},  // 1ms
      [](std::size_t) -> IngestServer::TrySink {
        return [](const WireTuple*, std::size_t) { return std::size_t{0}; };
      });
  ASSERT_TRUE(server.Start());

  IngestClient client;
  ASSERT_TRUE(client.Connect(kHost, server.port()));
  std::vector<WireTuple> batch(16);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i] = {i, 1.0};
  }
  ASSERT_TRUE(client.SendBatch(batch.data(), batch.size()));

  ASSERT_TRUE(WaitFor([&server] {
    const telemetry::IngestSnapshot s = server.snapshot();
    return s.deadline_expiries >= 1 && s.tuples_dropped == 16;
  }));
  EXPECT_EQ(server.snapshot().tuples_accepted, 0u);

  // The connection survived the shed: a second batch flows through it and
  // is shed the same way, never wedged.
  ASSERT_TRUE(client.SendBatch(batch.data(), batch.size()));
  ASSERT_TRUE(WaitFor([&server] {
    return server.snapshot().tuples_dropped == 32;
  }));
  server.Stop();
}

TEST(IngestServerTest, ShedOldestKeepsTheFreshestSuffix) {
  // The sink refuses its first call, then accepts everything: shed-oldest
  // drops exactly the one oldest tuple and admits the rest, in order.
  std::vector<WireTuple> sunk;
  bool refused = false;
  IngestServer server(
      {.port = 0, .threads = 1,
       .backpressure = runtime::Backpressure::kShedOldest},
      [&sunk, &refused](std::size_t) -> IngestServer::TrySink {
        return [&sunk, &refused](const WireTuple* t, std::size_t n) {
          if (!refused) {
            refused = true;
            return std::size_t{0};
          }
          sunk.insert(sunk.end(), t, t + n);
          return n;
        };
      });
  ASSERT_TRUE(server.Start());

  IngestClient client;
  ASSERT_TRUE(client.Connect(kHost, server.port()));
  std::vector<WireTuple> batch(8);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i] = {i, static_cast<double>(i)};
  }
  ASSERT_TRUE(client.SendBatch(batch.data(), batch.size()));

  ASSERT_TRUE(WaitFor([&server] {
    const telemetry::IngestSnapshot s = server.snapshot();
    return s.tuples_accepted + s.tuples_dropped == 8;
  }));
  const telemetry::IngestSnapshot snap = server.snapshot();
  EXPECT_EQ(snap.tuples_dropped, 1u);
  EXPECT_EQ(snap.tuples_accepted, 7u);
  server.Stop();
  ASSERT_EQ(sunk.size(), 7u);
  for (std::size_t i = 0; i < 7; ++i) EXPECT_EQ(sunk[i].ts, i + 1);
}

// ---------------------------------------------------------------------
// Idle-connection timeout (Options::idle_ns).
// ---------------------------------------------------------------------

// A client that sends one batch then goes silent (socket open, no bytes)
// must be closed by the idle sweep and counted in idle_closes; a second,
// chatty client on the same server must ride through untouched.
TEST(IngestServerTest, IdleTimeoutClosesSilentConnectionOnly) {
  std::vector<WireTuple> sunk;
  IngestServer server(
      {.port = 0, .threads = 1, .idle_ns = 40'000'000},  // 40ms
      [&sunk](std::size_t) -> IngestServer::TrySink {
        return [&sunk](const WireTuple* t, std::size_t n) {
          sunk.insert(sunk.end(), t, t + n);
          return n;
        };
      });
  ASSERT_TRUE(server.Start());

  IngestClient silent;
  ASSERT_TRUE(silent.Connect(kHost, server.port()));
  const WireTuple first{1, 10.0};
  ASSERT_TRUE(silent.SendBatch(&first, 1));

  IngestClient chatty;
  ASSERT_TRUE(chatty.Connect(kHost, server.port()));
  // Keep the chatty side under the timeout while the silent side ages out.
  uint64_t seq = 2;
  ASSERT_TRUE(WaitFor([&] {
    const WireTuple beat{seq++, 1.0};
    EXPECT_TRUE(chatty.SendBatch(&beat, 1));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    return server.snapshot().idle_closes == 1;
  }));

  const telemetry::IngestSnapshot snap = server.snapshot();
  EXPECT_EQ(snap.idle_closes, 1u);
  EXPECT_EQ(snap.connections_open, 1u);  // only the chatty one survives
  EXPECT_EQ(snap.connections_closed_on_error, 0u);
  EXPECT_EQ(snap.tuples_dropped, 0u);  // the idle close lost nothing

  // The silent client's data made it before the close, and the export
  // carries the new counter.
  telemetry::RuntimeSnapshot rs;
  rs.ingest = snap;
  rs.has_ingest = true;
  EXPECT_NE(ToJson(rs).find("\"idle_closes\":1"), std::string::npos);
  server.Stop();
  EXPECT_TRUE(std::any_of(sunk.begin(), sunk.end(),
                          [](const WireTuple& t) { return t.v == 10.0; }));

  // Default-off: nothing in this suite's other servers ever idle-closes,
  // but assert the documented default explicitly.
  EXPECT_EQ(IngestServer::Options{}.idle_ns, 0u);
}

// ---------------------------------------------------------------------
// Client connect/send retry (RetryOptions).
// ---------------------------------------------------------------------

// The late-binding race: a producer starts dialing before its server has
// bound. ConnectWithRetry must eat the ECONNREFUSED attempts and land on
// the listener once it appears; the send path then works normally.
TEST(IngestClientRetryTest, ConnectRetriesUntilListenerBinds) {
  // Reserve an ephemeral port, then free it for the late-bound server.
  uint16_t port = 0;
  {
    IngestServer probe({.port = 0}, [](std::size_t) {
      return [](const WireTuple*, std::size_t n) { return n; };
    });
    ASSERT_TRUE(probe.Start());
    port = probe.port();
    probe.Stop();
  }

  std::vector<WireTuple> sunk;
  IngestServer server({.port = port},
                      [&sunk](std::size_t) -> IngestServer::TrySink {
                        return [&sunk](const WireTuple* t, std::size_t n) {
                          sunk.insert(sunk.end(), t, t + n);
                          return n;
                        };
                      });

  IngestClient client;
  int attempts = 0;
  IngestClient::RetryResult result = IngestClient::RetryResult::kOk;
  std::thread dialer([&] {
    result = client.ConnectWithRetry(
        kHost, port,
        {.max_attempts = 200, .initial_backoff_ns = 1'000'000,
         .max_backoff_ns = 4'000'000},
        &attempts);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(server.Start());  // bind AFTER the dialer began failing
  dialer.join();

  ASSERT_EQ(result, IngestClient::RetryResult::kOk);
  EXPECT_GT(attempts, 1);  // at least one refused attempt before the bind
  const WireTuple t{7, 7.0};
  ASSERT_TRUE(client.SendBatch(&t, 1));
  client.CloseSend();
  ASSERT_TRUE(WaitFor(
      [&server] { return server.snapshot().tuples_accepted == 1; }));
  server.Stop();
  ASSERT_EQ(sunk.size(), 1u);
  EXPECT_EQ(sunk[0].ts, 7u);
}

// No listener ever appears: the budget is spent, the typed error comes
// back, and the attempt count matches the budget exactly.
TEST(IngestClientRetryTest, ExhaustedBudgetReturnsTypedError) {
  uint16_t dead_port = 0;
  {
    IngestServer probe({.port = 0}, [](std::size_t) {
      return [](const WireTuple*, std::size_t n) { return n; };
    });
    ASSERT_TRUE(probe.Start());
    dead_port = probe.port();
    probe.Stop();  // nothing listens here anymore
  }
  IngestClient client;
  int attempts = 0;
  const auto r = client.ConnectWithRetry(
      kHost, dead_port,
      {.max_attempts = 3, .initial_backoff_ns = 100'000,
       .max_backoff_ns = 1'000'000},
      &attempts);
  EXPECT_EQ(r, IngestClient::RetryResult::kRetriesExhausted);
  EXPECT_EQ(attempts, 3);
  EXPECT_FALSE(client.connected());

  // SendBatchWithRetry composes the same budget around reconnects: against
  // the dead port it must also exhaust, never silently drop the batch.
  const WireTuple t{1, 1.0};
  int send_attempts = 0;
  const auto sr = client.SendBatchWithRetry(
      &t, 1, kHost, dead_port,
      {.max_attempts = 2, .initial_backoff_ns = 100'000,
       .max_backoff_ns = 1'000'000},
      &send_attempts);
  EXPECT_EQ(sr, IngestClient::RetryResult::kRetriesExhausted);
  EXPECT_EQ(send_attempts, 2);
}

// The routine silent-loss shape of the one-way protocol: a bursty client
// outlives the server's idle_ns reaper, and its next send lands on a
// socket the server already abandoned — send() succeeds into the kernel
// buffer, the batch vanishes. idle_reconnect_ns must close that window:
// once the inter-send gap exceeds it, SendBatchWithRetry reconnects
// BEFORE sending, so the batch arrives on a connection the server holds.
TEST(IngestClientRetryTest, IdleReconnectBeatsServerIdleClose) {
  std::vector<WireTuple> sunk;
  IngestServer server(
      {.port = 0, .threads = 1, .idle_ns = 40'000'000},  // 40ms
      [&sunk](std::size_t) -> IngestServer::TrySink {
        return [&sunk](const WireTuple* t, std::size_t n) {
          sunk.insert(sunk.end(), t, t + n);
          return n;
        };
      });
  ASSERT_TRUE(server.Start());

  IngestClient client;
  const WireTuple first{1, 1.0};
  int attempts = 0;
  ASSERT_EQ(client.SendBatchWithRetry(
                &first, 1, kHost, server.port(),
                {.max_attempts = 3, .idle_reconnect_ns = 20'000'000},
                &attempts),
            IngestClient::RetryResult::kOk);
  EXPECT_EQ(attempts, 1);

  // Go silent until the server's reaper closes our connection. The client
  // cannot observe the close (one-way protocol, no reads) — connected()
  // still claims the stale fd is fine.
  ASSERT_TRUE(
      WaitFor([&server] { return server.snapshot().idle_closes == 1; }));
  EXPECT_TRUE(client.connected());

  // The burst after the gap: more than idle_reconnect_ns has elapsed since
  // the last send, so the client presumes the socket dead and reconnects
  // first. Without the option this send would be the silent-loss race.
  const WireTuple second{2, 2.0};
  ASSERT_EQ(client.SendBatchWithRetry(
                &second, 1, kHost, server.port(),
                {.max_attempts = 3, .idle_reconnect_ns = 20'000'000},
                &attempts),
            IngestClient::RetryResult::kOk);
  EXPECT_EQ(attempts, 1);  // proactive reconnect is not a retry

  ASSERT_TRUE(WaitFor(
      [&server] { return server.snapshot().tuples_accepted == 2; }));
  const telemetry::IngestSnapshot snap = server.snapshot();
  EXPECT_EQ(snap.connections_opened, 2u);  // fresh socket for the burst
  EXPECT_EQ(snap.connections_closed_on_error, 0u);
  server.Stop();
  ASSERT_EQ(sunk.size(), 2u);
  EXPECT_EQ(sunk[0].ts, 1u);
  EXPECT_EQ(sunk[1].ts, 2u);

  // Default-off: the aging guard never fires unless asked for.
  EXPECT_EQ(IngestClient::RetryOptions{}.idle_reconnect_ns, 0u);
}

// ---------------------------------------------------------------------
// Telemetry export.
// ---------------------------------------------------------------------
TEST(IngestServerTest, SnapshotAttachesToRuntimeJson) {
  AdversarialIngest rig;
  ASSERT_TRUE(rig.started());
  IngestClient client;
  ASSERT_TRUE(client.Connect(kHost, rig.server().port()));
  const WireTuple t{1, 2.0};
  ASSERT_TRUE(client.SendBatch(&t, 1));
  ASSERT_TRUE(WaitFor(
      [&rig] { return rig.server().snapshot().tuples_accepted == 1; }));

  telemetry::RuntimeSnapshot rs;
  rs.ingest = rig.server().snapshot();
  rs.has_ingest = true;
  const std::string json = ToJson(rs);
  EXPECT_NE(json.find("\"ingest\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tuples_accepted\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"connections\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"ingest_latency_ns\":"), std::string::npos) << json;

  // Without the front door attached, the runtime JSON omits the section.
  telemetry::RuntimeSnapshot bare;
  EXPECT_EQ(ToJson(bare).find("\"ingest\":"), std::string::npos);
  rig.server().Stop();
}

}  // namespace
}  // namespace slick
