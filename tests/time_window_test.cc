// Event-time window tests: TimeWindow over every FIFO aggregator against a
// brute-force timestamped oracle, with irregular and bursty arrivals.

#include <cstdint>
#include <deque>
#include <utility>

#include <gtest/gtest.h>

#include "core/monotonic_deque.h"
#include "core/subtract_on_evict.h"
#include "core/time_window.h"
#include "ops/arith.h"
#include "ops/minmax.h"
#include "util/rng.h"
#include "window/daba.h"
#include "window/two_stacks.h"

namespace slick {
namespace {

using core::TimeWindow;

template <typename Op>
class TimedOracle {
 public:
  explicit TimedOracle(uint64_t range) : range_(range) {}

  void Observe(uint64_t ts, typename Op::value_type v) {
    now_ = ts;
    items_.emplace_back(ts, std::move(v));
  }

  typename Op::result_type Query() {
    const uint64_t cutoff = now_ >= range_ ? now_ - range_ + 1 : 0;
    while (!items_.empty() && items_.front().first < cutoff) {
      items_.pop_front();
    }
    auto acc = Op::identity();
    for (const auto& [ts, v] : items_) acc = Op::combine(acc, v);
    return Op::lower(acc);
  }

  std::size_t Size() {
    (void)Query();
    return items_.size();
  }

 private:
  std::deque<std::pair<uint64_t, typename Op::value_type>> items_;
  uint64_t range_;
  uint64_t now_ = 0;
};

template <typename Agg>
void RunTimedOracle(uint64_t range, uint64_t seed, bool bursty) {
  using Op = typename Agg::op_type;
  TimeWindow<Agg> win(range);
  TimedOracle<Op> oracle(range);
  util::SplitMix64 rng(seed);
  uint64_t ts = 0;
  for (int i = 0; i < 3000; ++i) {
    // Bursty: many elements share a timestamp; sparse: large gaps.
    ts += bursty ? rng.NextBounded(2) : 1 + rng.NextBounded(2 * range);
    const auto v = Op::lift(static_cast<typename Op::input_type>(
        static_cast<int64_t>(rng.NextBounded(1000))));
    win.Observe(ts, v);
    oracle.Observe(ts, v);
    ASSERT_EQ(win.query(), oracle.Query()) << "i=" << i << " ts=" << ts;
    ASSERT_EQ(win.size(), oracle.Size());
  }
}

class TimeRangeSweep : public ::testing::TestWithParam<uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Ranges, TimeRangeSweep,
                         ::testing::Values(1, 2, 5, 16, 100, 1000),
                         [](const auto& tpi) {
                           std::string name("r");
                           name += std::to_string(tpi.param);
                           return name;
                         });

TEST_P(TimeRangeSweep, SubtractOnEvictSumBursty) {
  RunTimedOracle<core::SubtractOnEvict<ops::SumInt>>(GetParam(), 1, true);
}
TEST_P(TimeRangeSweep, SubtractOnEvictSumSparse) {
  RunTimedOracle<core::SubtractOnEvict<ops::SumInt>>(GetParam(), 2, false);
}
TEST_P(TimeRangeSweep, MonotonicDequeMaxBursty) {
  RunTimedOracle<core::MonotonicDeque<ops::MaxInt>>(GetParam(), 3, true);
}
TEST_P(TimeRangeSweep, DabaSumBursty) {
  RunTimedOracle<window::Daba<ops::SumInt>>(GetParam(), 4, true);
}
TEST_P(TimeRangeSweep, TwoStacksMaxSparse) {
  RunTimedOracle<window::TwoStacks<ops::MaxInt>>(GetParam(), 5, false);
}

TEST(TimeWindowTest, AdvanceToExpiresWithoutInsert) {
  TimeWindow<core::SubtractOnEvict<ops::SumInt>> win(10);
  win.Observe(1, 5);
  win.Observe(5, 7);
  EXPECT_EQ(win.query(), 12);
  win.AdvanceTo(11);  // window (1, 11]: ts=1 expires
  EXPECT_EQ(win.query(), 7);
  EXPECT_EQ(win.size(), 1u);
  win.AdvanceTo(20);  // everything expires
  EXPECT_EQ(win.query(), 0);
  EXPECT_EQ(win.size(), 0u);
}

TEST(TimeWindowTest, SameTimestampElementsShareTheWindowEdge) {
  TimeWindow<core::SubtractOnEvict<ops::SumInt>> win(3);
  win.Observe(10, 1);
  win.Observe(10, 2);
  win.Observe(10, 4);
  EXPECT_EQ(win.query(), 7);
  win.Observe(12, 8);  // window (9, 12]: all alive
  EXPECT_EQ(win.query(), 15);
  win.Observe(13, 16);  // window (10, 13]: the three ts=10 expire
  EXPECT_EQ(win.query(), 24);
}

TEST(TimeWindowTest, RejectsRegressingTimestamps) {
  TimeWindow<core::SubtractOnEvict<ops::SumInt>> win(10);
  win.Observe(5, 1);
  EXPECT_DEATH(win.Observe(4, 1), "non-decreasing");
}

TEST(TimeWindowTest, MemoryTracksContent) {
  TimeWindow<core::MonotonicDeque<ops::MaxInt>> win(1000);
  const std::size_t before = win.memory_bytes();
  for (uint64_t i = 0; i < 500; ++i) {
    win.Observe(i, static_cast<int64_t>(1000 - i));  // descending: all kept
  }
  EXPECT_GT(win.memory_bytes(), before);
}

}  // namespace
}  // namespace slick
