// Tests for the general-path operations (associative but neither invertible
// nor selective): BloomSketch and MaxCount. These exercise the facade's
// TwoStacks/DABA fallback — the class of queries where the paper's
// state-of-the-art baselines remain the right tool.

#include <cstdint>
#include <set>

#include <gtest/gtest.h>

#include "core/sliding_aggregator.h"
#include "core/windowed.h"
#include "ops/maxcount.h"
#include "ops/sketch.h"
#include "util/rng.h"
#include "window/daba.h"
#include "window/reference.h"

namespace slick::ops {
namespace {

// --------------------------- BloomSketch ----------------------------------

TEST(BloomSketchTest, TraitsRouteToGeneralPath) {
  static_assert(AggregateOp<BloomSketch>);
  static_assert(!InvertibleOp<BloomSketch>);
  static_assert(!SelectiveOp<BloomSketch>);
  static_assert(std::is_same_v<core::FifoAggregatorFor<BloomSketch>,
                               window::Daba<BloomSketch>>);
  SUCCEED();
}

TEST(BloomSketchTest, AlgebraicLaws) {
  const auto a = BloomSketch::lift(1), b = BloomSketch::lift(2),
             c = BloomSketch::lift(3);
  EXPECT_EQ(BloomSketch::combine(BloomSketch::combine(a, b), c),
            BloomSketch::combine(a, BloomSketch::combine(b, c)));
  EXPECT_EQ(BloomSketch::combine(a, b), BloomSketch::combine(b, a));
  EXPECT_EQ(BloomSketch::combine(BloomSketch::identity(), a), a);
}

TEST(BloomSketchTest, NoFalseNegatives) {
  auto sketch = BloomSketch::identity();
  for (uint64_t item = 100; item < 150; ++item) {
    sketch = BloomSketch::combine(sketch, BloomSketch::lift(item));
  }
  for (uint64_t item = 100; item < 150; ++item) {
    EXPECT_TRUE(BloomSketch::MightContain(sketch, item));
  }
}

TEST(BloomSketchTest, FalsePositivesAreRareWhenLightlyLoaded) {
  auto sketch = BloomSketch::identity();
  for (uint64_t item = 0; item < 30; ++item) {
    sketch = BloomSketch::combine(sketch, BloomSketch::lift(item));
  }
  int false_positives = 0;
  for (uint64_t probe = 1000; probe < 2000; ++probe) {
    false_positives += BloomSketch::MightContain(sketch, probe) ? 1 : 0;
  }
  EXPECT_LT(false_positives, 50);  // ~1.3% expected at this load
}

TEST(BloomSketchTest, DistinctEstimateTracksTruth) {
  util::SplitMix64 rng(3);
  auto sketch = BloomSketch::identity();
  std::set<uint64_t> truth;
  for (int i = 0; i < 60; ++i) {
    const uint64_t item = rng.NextBounded(40);  // duplicates guaranteed
    truth.insert(item);
    sketch = BloomSketch::combine(sketch, BloomSketch::lift(item));
  }
  const double est = sketch.EstimateDistinct();
  EXPECT_NEAR(est, static_cast<double>(truth.size()),
              0.35 * static_cast<double>(truth.size()) + 3.0);
}

TEST(BloomSketchTest, SlidingWindowDistinctSymbols) {
  // The realistic use: distinct item ids over the last 64 events, running
  // on DABA via the facade (SlickDeque cannot execute this op).
  core::Windowed<core::FifoAggregatorFor<BloomSketch>> win(64);
  window::ReferenceAggregator<BloomSketch> ref;
  util::SplitMix64 rng(9);
  for (int i = 0; i < 64; ++i) ref.insert(BloomSketch::identity());
  for (int i = 0; i < 500; ++i) {
    const uint64_t item = rng.NextBounded(30);
    win.slide(BloomSketch::lift(item));
    ref.evict();
    ref.insert(BloomSketch::lift(item));
    ASSERT_EQ(win.query(), ref.query()) << "i=" << i;
  }
}

// --------------------------- MaxCount -------------------------------------

TEST(MaxCountTest, TraitsRouteToGeneralPath) {
  static_assert(AggregateOp<MaxCount>);
  static_assert(!InvertibleOp<MaxCount>);
  static_assert(!SelectiveOp<MaxCount>);
  SUCCEED();
}

TEST(MaxCountTest, CombineMergesTies) {
  const auto a = MaxCount::lift(5.0);
  const auto b = MaxCount::lift(5.0);
  const auto c = MaxCount::lift(3.0);
  const auto ab = MaxCount::combine(a, b);
  EXPECT_DOUBLE_EQ(ab.max, 5.0);
  EXPECT_EQ(ab.count, 2);
  const auto abc = MaxCount::combine(ab, c);
  EXPECT_DOUBLE_EQ(abc.max, 5.0);
  EXPECT_EQ(abc.count, 2);
  EXPECT_EQ(MaxCount::combine(c, ab).count, 2);  // commutative
  EXPECT_EQ(MaxCount::combine(MaxCount::identity(), a), a);
}

TEST(MaxCountTest, Associativity) {
  util::SplitMix64 rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    const auto x = MaxCount::lift(static_cast<double>(rng.NextBounded(5)));
    const auto y = MaxCount::lift(static_cast<double>(rng.NextBounded(5)));
    const auto z = MaxCount::lift(static_cast<double>(rng.NextBounded(5)));
    ASSERT_EQ(MaxCount::combine(MaxCount::combine(x, y), z),
              MaxCount::combine(x, MaxCount::combine(y, z)));
  }
}

TEST(MaxCountTest, SlidingWindowCountsCeilingSensors) {
  core::Windowed<window::Daba<MaxCount>> win(8);
  // Stream: plateau of 9s among noise; the window must report how many 9s
  // are inside it.
  const double stream[] = {1, 9, 2, 9, 9, 3, 4, 5, 6, 7, 8, 9, 9, 9, 1, 2};
  window::ReferenceAggregator<MaxCount> ref;
  for (int i = 0; i < 8; ++i) ref.insert(MaxCount::identity());
  for (double x : stream) {
    win.slide(MaxCount::lift(x));
    ref.evict();
    ref.insert(MaxCount::lift(x));
    ASSERT_EQ(win.query(), ref.query());
  }
  const auto last = win.query();
  EXPECT_DOUBLE_EQ(last.max, 9.0);
  EXPECT_EQ(last.count, 3);  // the final window holds 8,9,9,9,1,2 + 6,7
}

}  // namespace
}  // namespace slick::ops
