// Time-based multi-ACQ engine tests: answers at every slide boundary over
// time-based ranges, with bursty and gappy timelines, checked against a
// brute-force timestamped model.

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "engine/time_acq_engine.h"
#include "ops/arith.h"
#include "ops/minmax.h"
#include "util/rng.h"

namespace slick::engine {
namespace {

using plan::Pat;

/// Brute force: query q answers at every time boundary t = m*slide with
/// the fold of elements whose timestamp lies in [t - range, t) — the
/// engine's half-open-at-the-top pane convention.
template <typename Op>
class TimedModel {
 public:
  explicit TimedModel(std::vector<TimeQuerySpec> queries)
      : queries_(std::move(queries)) {}

  void Observe(uint64_t ts, typename Op::input_type x) {
    events_.emplace_back(ts, Op::lift(x));
  }

  /// Answers due in time interval (from, to], in (time, query) order.
  std::vector<std::pair<uint32_t, typename Op::result_type>> DueIn(
      uint64_t from, uint64_t to) const {
    std::vector<std::tuple<uint64_t, uint32_t,
                           typename Op::result_type>> due;
    for (uint32_t qi = 0; qi < queries_.size(); ++qi) {
      const auto& q = queries_[qi];
      for (uint64_t t = (from / q.slide + 1) * q.slide; t <= to;
           t += q.slide) {
        // Window is [t - range, t), guarded against unsigned underflow.
        auto acc = Op::identity();
        for (const auto& [ts, v] : events_) {
          const bool above_lo = t < q.range || ts >= t - q.range;
          if (above_lo && ts < t) acc = Op::combine(acc, v);
        }
        due.emplace_back(t, qi, Op::lower(acc));
      }
    }
    std::sort(due.begin(), due.end(), [this](const auto& a, const auto& b) {
      if (std::get<0>(a) != std::get<0>(b)) {
        return std::get<0>(a) < std::get<0>(b);
      }
      // Within a boundary the engine reports larger ranges first (the
      // shared plan's descending order for the deque walk).
      const auto& qa = queries_[std::get<1>(a)];
      const auto& qb = queries_[std::get<1>(b)];
      if (qa.range != qb.range) return qa.range > qb.range;
      return std::get<1>(a) < std::get<1>(b);
    });
    std::vector<std::pair<uint32_t, typename Op::result_type>> out;
    for (const auto& [t, qi, res] : due) out.emplace_back(qi, res);
    return out;
  }

 private:
  std::vector<TimeQuerySpec> queries_;
  std::vector<std::pair<uint64_t, typename Op::value_type>> events_;
};

template <typename RawOp>
void RunTimedOracle(std::vector<TimeQuerySpec> queries, uint64_t seed,
                    bool gappy) {
  TimeEngineFor<RawOp> eng(queries, Pat::kPairs);
  TimedModel<RawOp> model(queries);
  util::SplitMix64 rng(seed);

  std::vector<std::pair<uint32_t, typename RawOp::result_type>> got;
  uint64_t ts = 0;
  uint64_t flushed_to = 0;
  auto sink = [&](uint32_t q, const typename RawOp::result_type& r) {
    got.emplace_back(q, r);
  };
  for (int i = 0; i < 1200; ++i) {
    ts += gappy ? rng.NextBounded(50) : rng.NextBounded(3);
    const auto x = static_cast<typename RawOp::input_type>(
        static_cast<int64_t>(rng.NextBounded(1000)));
    eng.Observe(ts, x, sink);
    model.Observe(ts, x);
    // Observe() already closed every pane ending at or before ts's pane
    // start, so `got` holds exactly the answers due at times <= boundary.
    if (i % 100 == 99) {
      const uint64_t boundary = (ts / eng.pane_length()) * eng.pane_length();
      const auto want = model.DueIn(flushed_to, boundary);
      ASSERT_EQ(got, want) << "i=" << i << " boundary=" << boundary;
      got.clear();
      flushed_to = boundary;
    }
  }
}

TEST(TimeAcqEngineTest, SingleQueryDense) {
  RunTimedOracle<ops::SumInt>({{40, 10}}, 1, false);
}
TEST(TimeAcqEngineTest, SingleQueryGappy) {
  RunTimedOracle<ops::SumInt>({{40, 10}}, 2, true);
}
TEST(TimeAcqEngineTest, MultiQueryHeterogeneous) {
  RunTimedOracle<ops::SumInt>({{60, 10}, {100, 20}, {35, 5}}, 3, false);
  RunTimedOracle<ops::SumInt>({{60, 10}, {100, 20}, {35, 5}}, 4, true);
}
TEST(TimeAcqEngineTest, MaxThroughNonInvDeque) {
  RunTimedOracle<ops::MaxInt>({{60, 10}, {30, 15}}, 5, false);
  RunTimedOracle<ops::MaxInt>({{60, 10}, {30, 15}}, 6, true);
}

TEST(TimeAcqEngineTest, PaneIsGcdOfRangesAndSlides) {
  TimeEngineFor<ops::SumInt> eng({{60, 10}, {100, 20}, {35, 5}}, Pat::kPairs);
  EXPECT_EQ(eng.pane_length(), 5u);
  TimeEngineFor<ops::SumInt> coarse({{1000, 500}}, Pat::kPairs);
  EXPECT_EQ(coarse.pane_length(), 500u);
}

TEST(TimeAcqEngineTest, EmptyPanesContributeIdentity) {
  // Max over (t-20, t] every 10 units; a long silent gap must yield the
  // identity (-inf lowered) once all data expires, not a stale value.
  TimeEngineFor<ops::Max> eng({{20, 10}}, Pat::kPairs);
  std::vector<double> answers;
  auto sink = [&](uint32_t, double a) { answers.push_back(a); };
  eng.Observe(5, 42.0, sink);
  eng.AdvanceTo(100, sink);
  ASSERT_EQ(answers.size(), 10u);  // t = 10, 20, ..., 100
  EXPECT_DOUBLE_EQ(answers[0], 42.0);   // t=10 covers [-10,10) ∋ 5
  EXPECT_DOUBLE_EQ(answers[1], 42.0);   // t=20 covers [0,20)
  for (std::size_t i = 2; i < answers.size(); ++i) {
    EXPECT_EQ(answers[i], ops::Max::identity()) << "t=" << 10 * (i + 1);
  }
}

TEST(TimeAcqEngineTest, RegressingTimestampDies) {
  TimeEngineFor<ops::Sum> eng({{10, 5}}, Pat::kPairs);
  auto drop = [](uint32_t, double) {};
  eng.Observe(7, 1.0, drop);
  EXPECT_DEATH(eng.Observe(6, 1.0, drop), "non-decreasing");
}

}  // namespace
}  // namespace slick::engine
