// Deterministic model-checking of the supervised drain protocol's crash
// recovery (tests/model/, DESIGN.md §9 and §12): a worker that fail-stops
// mid-drain — before or after the slide, at any explored interleaving with
// the router — must be restorable from its last checkpoint plus a replay
// of the ring's unreleased span, with every routed element contributing to
// the final aggregate EXACTLY once.
//
// Three virtual threads over one real SpscRing:
//   * router     — blocking-pushes 1..N (try_push + WaitForSpace park
//                  protocol), then closes the ring;
//   * worker     — ShardWorker::Run's supervised loop verbatim, decomposed
//                  into scheduler-visible steps: TryClaimPop, per-element
//                  slide, deferred ReleasePop gated on a checkpoint (with
//                  the capacity backstop), processed publish, the
//                  WaitForData park (on tail != claim — the deferred-release
//                  predicate), and the post-close drain. A scripted kill
//                  fail-stops it at a chosen batch ordinal on a chosen side
//                  of the slide;
//   * supervisor — parked until the worker is dead; then restores the
//                  checkpointed {sum, done}, rewinds the ring's claim
//                  cursor (ResetClaims), and respawns the worker.
//
// Checked on EVERY explored schedule: the published processed count never
// exceeds the slides that back it; releases never pass the claim cursor;
// at termination the ring is fully drained, released, and the recovered
// aggregate equals the sequential oracle sum(1..N) — replayed slides are
// observable in the slide count but never in the answer.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "model/virtual_scheduler.h"
#include "runtime/spsc_ring.h"

namespace slick::model {
namespace {

using runtime::SpscRing;

enum class Side { kBeforeSlide, kAfterSlide };

struct RecoveryWorld {
  explicit RecoveryWorld(std::size_t min_capacity) : ring(min_capacity) {}

  SpscRing<int64_t> ring;
  // The modeled aggregator: an unbounded sum (window >= stream), so
  // "aggregated exactly once" is equality with sum(1..N).
  int64_t sum = 0;
  int64_t routed = 0;
  int64_t processed = 0;  ///< models ShardWorker::processed_
  int64_t slides = 0;     ///< ground truth: slide() invocations (incl. replay)
  // Checkpoint store (models ShardWorker::last_good_, pre-decoded).
  int64_t ckpt_sum = 0;
  int64_t ckpt_done = 0;
  // Crash/recovery handshake.
  bool worker_dead = false;
  bool respawn_token = false;  ///< supervisor set; worker consumes
  int64_t restored_done = 0;   ///< what the respawned worker resumes from
  bool worker_done = false;
  int recoveries = 0;
  bool kill_fired = false;
};

/// Router: try_push(1..N) with the WaitForSpace snapshot/recheck/park
/// protocol, then close() — identical to the shard-drain model's router.
class RouterThread : public VirtualThread {
 public:
  RouterThread(RecoveryWorld* w, int64_t n) : w_(w), n_(n) {}

  void Step() override {
    switch (state_) {
      case State::kTryPush: {
        const int64_t v = next_ + 1;
        if (w_->ring.try_push(v)) {
          ++w_->routed;
          ++next_;
          if (next_ == n_) state_ = State::kClose;
        } else {
          state_ = State::kSnapshotEvent;
        }
        return;
      }
      case State::kSnapshotEvent:
        event_snapshot_ = w_->ring.head_event_word();
        state_ = State::kRecheck;
        return;
      case State::kRecheck:
        state_ = w_->ring.size() < w_->ring.capacity() ? State::kTryPush
                                                       : State::kParked;
        return;
      case State::kParked:
        state_ = State::kTryPush;
        return;
      case State::kClose:
        w_->ring.close();
        state_ = State::kDone;
        return;
      case State::kDone:
        return;
    }
  }
  bool Done() const override { return state_ == State::kDone; }
  bool Parked() const override {
    return state_ == State::kParked &&
           w_->ring.head_event_word() == event_snapshot_;
  }

 private:
  enum class State {
    kTryPush,
    kSnapshotEvent,
    kRecheck,
    kParked,
    kClose,
    kDone,
  };
  RecoveryWorld* w_;
  const int64_t n_;
  State state_ = State::kTryPush;
  int64_t next_ = 0;
  uint32_t event_snapshot_ = 0;
};

/// Worker: the supervised drain loop with deferred releases and a scripted
/// fail-stop. After a crash it parks in kDead until the supervisor's
/// respawn token, then resumes exactly like a respawned Run(): done =
/// restored count, no pending releases, claims starting from the rewound
/// claim cursor.
class SupervisedWorkerThread : public VirtualThread {
 public:
  SupervisedWorkerThread(RecoveryWorld* w, std::size_t batch,
                         std::size_t interval, uint64_t kill_batch, Side side)
      : w_(w),
        batch_(batch),
        interval_(interval),
        kill_batch_(kill_batch),
        side_(side) {}

  void Step() override {
    switch (state_) {
      case State::kClaim:
      case State::kFinalClaim: {
        const bool final_pass = state_ == State::kFinalClaim;
        std::size_t n = 0;
        int64_t* span = w_->ring.TryClaimPop(batch_, &n);
        if (span != nullptr) {
          ++batches_;
          pending_.assign(span, span + n);
          slid_ = 0;
          if (ShouldDie(Side::kBeforeSlide)) {
            Die();
            return;
          }
          state_ = State::kSlide;
        } else {
          state_ = final_pass ? State::kFinalRelease : State::kCheckClosed;
        }
        return;
      }
      case State::kSlide:
        w_->sum += pending_[slid_];
        ++w_->slides;
        if (++slid_ == pending_.size()) {
          if (ShouldDie(Side::kAfterSlide)) {
            Die();
            return;
          }
          state_ = State::kAccount;
        }
        return;
      case State::kAccount:
        // done += n; pending_release += n; checkpoint when due, or when the
        // capacity backstop would otherwise let unreleased slots wedge the
        // ring (mirrors ShardWorker::Run).
        done_ += static_cast<int64_t>(pending_.size());
        pending_release_ += pending_.size();
        if (done_ - w_->ckpt_done >= static_cast<int64_t>(interval_) ||
            pending_release_ + batch_ >= w_->ring.capacity()) {
          state_ = State::kCheckpoint;
        } else {
          state_ = State::kPublish;
        }
        return;
      case State::kCheckpoint:
        // Serialize-validate-commit, then release the covered slots. One
        // step: the frame write has no scheduler-visible interleaving.
        w_->ckpt_sum = w_->sum;
        w_->ckpt_done = done_;
        w_->ring.ReleasePop(pending_release_);
        pending_release_ = 0;
        state_ = State::kPublish;
        return;
      case State::kPublish:
        w_->processed = done_;
        state_ = State::kClaim;
        return;
      case State::kCheckClosed:
        state_ = w_->ring.closed() ? State::kFinalClaim : State::kSnapshotEvent;
        return;
      case State::kSnapshotEvent:
        event_snapshot_ = w_->ring.tail_event_word();
        state_ = State::kRecheck;
        return;
      case State::kRecheck:
        // WaitForData's predicate under deferred releases: unclaimed data
        // (tail != claim), not mere occupancy (tail != head).
        state_ = (w_->ring.unconsumed() != 0 || w_->ring.closed())
                     ? State::kClaim
                     : State::kParked;
        return;
      case State::kParked:
        state_ = State::kClaim;
        return;
      case State::kFinalRelease:
        if (pending_release_ > 0) {
          w_->ring.ReleasePop(pending_release_);
          pending_release_ = 0;
        }
        w_->processed = done_;
        w_->worker_done = true;
        state_ = State::kDone;
        return;
      case State::kDead:
        // Respawn: consume the supervisor's token and resume as a fresh
        // Run() — restored done count, empty pending, rewound claims.
        w_->respawn_token = false;
        done_ = w_->restored_done;
        pending_release_ = 0;
        pending_.clear();
        slid_ = 0;
        state_ = State::kClaim;
        return;
      case State::kDone:
        return;
    }
  }
  bool Done() const override { return state_ == State::kDone; }
  bool Parked() const override {
    if (state_ == State::kDead) return !w_->respawn_token;
    return state_ == State::kParked &&
           w_->ring.tail_event_word() == event_snapshot_;
  }

 private:
  bool ShouldDie(Side here) {
    if (w_->kill_fired || side_ != here) return false;
    if (batches_ < kill_batch_) return false;
    w_->kill_fired = true;
    return true;
  }

  void Die() {
    // Fail-stop: abandon the claimed span (claim cursor already advanced),
    // publish nothing, flag the supervisor.
    w_->worker_dead = true;
    state_ = State::kDead;
  }

  enum class State {
    kClaim,
    kSlide,
    kAccount,
    kCheckpoint,
    kPublish,
    kCheckClosed,
    kSnapshotEvent,
    kRecheck,
    kParked,
    kFinalClaim,
    kFinalRelease,
    kDead,
    kDone,
  };
  RecoveryWorld* w_;
  const std::size_t batch_;
  const std::size_t interval_;
  const uint64_t kill_batch_;  ///< die while draining this batch ordinal
  const Side side_;
  State state_ = State::kClaim;
  std::vector<int64_t> pending_;
  std::size_t slid_ = 0;
  std::size_t pending_release_ = 0;
  uint64_t batches_ = 0;
  int64_t done_ = 0;
  uint32_t event_snapshot_ = 0;
};

/// Supervisor: RecoverAndRestart as one step (join/restore/rewind/respawn
/// have no scheduler-visible interleaving with a dead worker — the real
/// code orders them with thread join/spawn).
class SupervisorThread : public VirtualThread {
 public:
  explicit SupervisorThread(RecoveryWorld* w) : w_(w) {}

  void Step() override {
    w_->worker_dead = false;
    w_->sum = w_->ckpt_sum;
    w_->restored_done = w_->ckpt_done;
    w_->processed = w_->ckpt_done;
    w_->ring.ResetClaims();
    ++w_->recoveries;
    w_->respawn_token = true;
  }
  bool Done() const override { return w_->worker_done; }
  bool Parked() const override { return !w_->worker_dead; }

 private:
  RecoveryWorld* w_;
};

struct OwnedRecoveryWorld {
  std::unique_ptr<RecoveryWorld> state;
  std::vector<std::unique_ptr<VirtualThread>> threads;
  World world;
};

void WireOracles(OwnedRecoveryWorld* ow, int64_t n) {
  RecoveryWorld* s = ow->state.get();
  const int64_t expect = n * (n + 1) / 2;
  ow->world.check_step = [s](const auto& fail) {
    if (s->processed > s->slides) {
      fail("processed count published ahead of the slides it covers");
      return;
    }
    if (s->slides < s->ckpt_done) {
      fail("checkpoint covers slides that never happened");
      return;
    }
    if (s->ring.unreleased() > s->ring.capacity()) {
      fail("release cursor ran past the claim cursor");
    }
  };
  ow->world.check_final = [s, n, expect](const auto& fail) {
    if (s->routed != n) {
      fail("router terminated before routing everything");
      return;
    }
    if (!s->ring.empty() || s->ring.unconsumed() != 0 ||
        s->ring.unreleased() != 0) {
      fail("ring not fully drained+released at termination: size=" +
           std::to_string(s->ring.size()));
      return;
    }
    if (s->processed != n) {
      fail("processed != routed at termination: " +
           std::to_string(s->processed));
      return;
    }
    if (s->sum != expect) {
      fail("recovered aggregate diverged from oracle (exactly-once "
           "violated): got " +
           std::to_string(s->sum) + " want " + std::to_string(expect) +
           " after " + std::to_string(s->recoveries) + " recoveries");
      return;
    }
    if (s->kill_fired && s->recoveries == 0) {
      fail("worker died but was never recovered");
    }
  };
  for (auto& t : ow->threads) ow->world.threads.push_back(t.get());
}

ExploreOptions ExploreFromEnv() {
  ExploreOptions opts;
  opts.preemption_bound =
      static_cast<int>(EnvKnob("SLICK_MODEL_PREEMPTIONS", 4));
  opts.max_schedules = static_cast<uint64_t>(
      EnvKnob("SLICK_MODEL_MAX_SCHEDULES", 2'000'000));
  return opts;
}

void RunScenario(const char* what, int64_t n, std::size_t capacity,
                 std::size_t batch, std::size_t interval, uint64_t kill_batch,
                 Side side) {
  ScheduleExplorer explorer(ExploreFromEnv());
  const ExploreResult r = explorer.Explore([&] {
    auto ow = std::make_unique<OwnedRecoveryWorld>();
    ow->state = std::make_unique<RecoveryWorld>(capacity);
    ow->threads.push_back(std::make_unique<RouterThread>(ow->state.get(), n));
    ow->threads.push_back(std::make_unique<SupervisedWorkerThread>(
        ow->state.get(), batch, interval, kill_batch, side));
    ow->threads.push_back(
        std::make_unique<SupervisorThread>(ow->state.get()));
    WireOracles(ow.get(), n);
    return ow;
  });
  EXPECT_FALSE(r.failed) << what << ": " << r.failure;
  EXPECT_TRUE(r.exhausted)
      << what << ": schedule space not exhausted within " << r.schedules
      << " schedules — raise SLICK_MODEL_MAX_SCHEDULES";
  EXPECT_GT(r.schedules, 0u);
  std::printf("[model] %-28s schedules=%llu steps=%llu max_depth=%llu\n",
              what, static_cast<unsigned long long>(r.schedules),
              static_cast<unsigned long long>(r.steps),
              static_cast<unsigned long long>(r.max_depth));
}

/// Death before the first checkpoint exists: recovery must fall back to a
/// fresh aggregator (ckpt = {0, 0}) and replay the whole ring.
TEST(RecoveryModel, KillBeforeFirstCheckpoint) {
  const auto n = static_cast<int64_t>(EnvKnob("SLICK_MODEL_OPS", 3));
  RunScenario("KillBeforeFirstCheckpoint", n, /*capacity=*/4, /*batch=*/2,
              /*interval=*/2, /*kill_batch=*/1, Side::kBeforeSlide);
}

/// Death after the slide but before publish/checkpoint: the aggregator
/// absorbed the doomed batch, and the restore must discard it (the batch
/// replays, so counting it twice is the bug this scenario hunts).
TEST(RecoveryModel, KillAfterSlideDiscardsDoubleCount) {
  const auto n = static_cast<int64_t>(EnvKnob("SLICK_MODEL_OPS", 3));
  RunScenario("KillAfterSlideDiscardsDoubleCount", n, /*capacity=*/4,
              /*batch=*/2, /*interval=*/2, /*kill_batch=*/1,
              Side::kAfterSlide);
}

/// Death on a later batch, past a committed checkpoint: recovery restores
/// the checkpoint and replays only the unreleased suffix.
TEST(RecoveryModel, KillPastCommittedCheckpoint) {
  const auto n = static_cast<int64_t>(EnvKnob("SLICK_MODEL_OPS", 4));
  RunScenario("KillPastCommittedCheckpoint", n, /*capacity=*/4, /*batch=*/2,
              /*interval=*/2, /*kill_batch=*/2, Side::kBeforeSlide);
}

/// Per-element batches maximize the interleaving points around the
/// checkpoint/release/publish triplet.
TEST(RecoveryModel, PerElementBatchKill) {
  const auto n = static_cast<int64_t>(EnvKnob("SLICK_MODEL_OPS", 3));
  RunScenario("PerElementBatchKill", n, /*capacity=*/4, /*batch=*/1,
              /*interval=*/1, /*kill_batch=*/2, Side::kAfterSlide);
}

/// A kill ordinal past the stream's batch count: the trigger never fires
/// and the supervised path must degrade to the plain drain (recoveries ==
/// 0, answers exact).
TEST(RecoveryModel, UnfiredTriggerIsInvisible) {
  const auto n = static_cast<int64_t>(EnvKnob("SLICK_MODEL_OPS", 3));
  RunScenario("UnfiredTriggerIsInvisible", n, /*capacity=*/4, /*batch=*/2,
              /*interval=*/2, /*kill_batch=*/99, Side::kBeforeSlide);
}

}  // namespace
}  // namespace slick::model
