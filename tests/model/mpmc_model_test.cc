// Deterministic model-checking of MpmcRing (tests/model/, DESIGN.md §14):
// exhaustive bounded-preemption exploration of producer×producer×consumer
// claim/publish/wrap/close interleavings against a per-producer-order
// oracle. Claim (the tail_ CAS) and publish (the per-slot seq store) are
// SEPARATE scheduler-visible steps — the whole point of the MPMC protocol
// is that another producer's claim or publish, a consumer claim, or a
// close() can land between them, and the step machines below expose every
// such window. Parking replays the exact snapshot/recheck/wait protocol of
// WaitForData/WaitForSpace via the ring's *_event_word() and
// pop_ready_or_settled()/push_space_or_closed() introspection hooks.
//
// Checked on EVERY explored schedule:
//   * exactly-once + per-producer FIFO: producer p's values appear in the
//     popped sequence exactly once, in publish order (claims are handed to
//     the one consumer in position order, so the merged sequence preserves
//     each producer's subsequence);
//   * conservation: popped + unconsumed == reserved at every step, and at
//     termination everything reserved was published, claimed and released
//     (no lost slot, no double-handout, settle-before-shutdown);
//   * no lost wakeup: a consumer parked across close-with-in-flight
//     reservations must be woken by the publisher's event bump — a missed
//     bump surfaces as a deadlock (no enabled thread with work remaining).
//
// Budget knobs (PR gate defaults in brackets; the nightly job raises
// them): SLICK_MODEL_MPMC_OPS [2] elements per producer,
// SLICK_MODEL_CAPACITY [2] min ring capacity, SLICK_MODEL_PREEMPTIONS [4]
// bound (-1 = unbounded), SLICK_MODEL_MAX_SCHEDULES [2M] runaway cap.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "model/virtual_scheduler.h"
#include "runtime/mpmc_ring.h"

namespace slick::model {
namespace {

using runtime::MpmcRing;

/// Value encoding: producer p's i-th element is p * 1000 + i, so the
/// oracles can recover (producer, index) from any popped value.
constexpr int kProducerStride = 1000;

struct MpmcWorld {
  MpmcWorld(std::size_t min_capacity, std::size_t producers)
      : ring(min_capacity), accepted_per(producers, 0) {}

  MpmcRing<int> ring;
  std::vector<int> popped;  ///< committed consume order (oracle input)
  std::vector<int> accepted_per;  ///< per-producer published counts
  uint64_t reserved = 0;    ///< slots claimed by producers (tail_ advance)
  uint64_t published = 0;   ///< slots whose seq store has landed
  int done_producers = 0;
  bool crash_dead = false;  ///< crash scenario: consumer fail-stopped
  bool reset_done = false;  ///< crash scenario: ResetClaims has run
};

/// Producer: claims spans of up to `claim_max` slots (one scheduler step —
/// the tail_ CAS), writes them, then publishes ONE slot per step (the
/// per-slot seq store), exposing every reserved-but-unpublished window to
/// the other threads. Optionally closes when done. The wait path mirrors
/// push_n + WaitForSpace.
class MpmcProducerThread : public VirtualThread {
 public:
  MpmcProducerThread(MpmcWorld* w, int id, int n, std::size_t claim_max,
                     bool close_when_done)
      : w_(w), id_(id), n_(n), claim_max_(claim_max),
        close_when_done_(close_when_done) {}

  void Step() override {
    switch (state_) {
      case State::kClaim: {
        const std::size_t want =
            std::min(claim_max_, static_cast<std::size_t>(n_ - next_));
        std::size_t k = 0;
        int* span = w_->ring.TryClaimPush(want, &k);
        if (span != nullptr) {
          for (std::size_t i = 0; i < k; ++i) {
            span[i] = id_ * kProducerStride + next_ + static_cast<int>(i);
          }
          w_->reserved += k;
          span_ = span;
          claimed_ = k;
          pub_off_ = 0;
          state_ = State::kPublish;
        } else {
          state_ = State::kCheckClosed;
        }
        return;
      }
      case State::kPublish:
        // One slot per step: a split publish is legal (suffix pieces), and
        // each piece's position is recovered from its own span pointer.
        w_->ring.PublishPush(span_ + pub_off_, 1);
        ++w_->published;
        ++w_->accepted_per[static_cast<std::size_t>(id_)];
        ++pub_off_;
        if (pub_off_ == claimed_) {
          next_ += static_cast<int>(claimed_);
          if (next_ == n_) {
            state_ = close_when_done_ ? State::kClose : State::kDone;
            if (state_ == State::kDone) ++w_->done_producers;
          } else {
            state_ = State::kClaim;
          }
        }
        return;
      case State::kCheckClosed:
        // push_n gives up on a closed ring (remaining elements rejected).
        if (w_->ring.closed()) {
          state_ = State::kDone;
          ++w_->done_producers;
        } else {
          state_ = State::kSnapshotEvent;
        }
        return;
      case State::kSnapshotEvent:
        event_snapshot_ = w_->ring.head_event_word();
        state_ = State::kRecheck;
        return;
      case State::kRecheck:
        // WaitForSpace: recheck the wake predicate before parking.
        state_ = w_->ring.push_space_or_closed() ? State::kClaim
                                                 : State::kParked;
        return;
      case State::kParked:
        state_ = State::kClaim;  // scheduled ⇒ the wake predicate held
        return;
      case State::kClose:
        w_->ring.close();
        state_ = State::kDone;
        ++w_->done_producers;
        return;
      case State::kDone:
        return;
    }
  }
  bool Done() const override { return state_ == State::kDone; }
  bool Parked() const override {
    return state_ == State::kParked &&
           w_->ring.head_event_word() == event_snapshot_;
  }

 private:
  enum class State {
    kClaim,
    kPublish,
    kCheckClosed,
    kSnapshotEvent,
    kRecheck,
    kParked,
    kClose,
    kDone,
  };
  MpmcWorld* w_;
  const int id_;
  const int n_;
  const std::size_t claim_max_;
  const bool close_when_done_;
  State state_ = State::kClaim;
  int next_ = 0;
  int* span_ = nullptr;
  std::size_t claimed_ = 0;
  std::size_t pub_off_ = 0;
  uint32_t event_snapshot_ = 0;
};

/// Consumer: mirrors the ShardWorker drain loop over pop_n/ClaimPop —
/// including the settle logic: after observing closed, a failed pop with
/// reservations still in flight (unconsumed() > 0) goes back to PARK on
/// tail_event_, because the in-flight publisher's event bump is the only
/// wake — precisely the close-race window the scenarios below exhaust.
class MpmcConsumerThread : public VirtualThread {
 public:
  MpmcConsumerThread(MpmcWorld* w, std::size_t batch, bool await_reset)
      : w_(w), batch_(batch) {
    if (await_reset) state_ = State::kAwaitReset;
  }

  void Step() override {
    std::vector<int> buf(batch_);
    switch (state_) {
      case State::kAwaitReset:
        state_ = State::kTryPop;  // scheduled ⇒ reset_done flipped
        return;
      case State::kTryPop: {
        const std::size_t k = w_->ring.try_pop_n(buf.data(), batch_);
        if (k > 0) {
          w_->popped.insert(w_->popped.end(), buf.begin(),
                            buf.begin() + static_cast<std::ptrdiff_t>(k));
        } else {
          state_ = State::kCheckClosed;
        }
        return;
      }
      case State::kCheckClosed:
        state_ = w_->ring.closed() ? State::kFinalPop : State::kSnapshotEvent;
        return;
      case State::kFinalPop: {
        // ClaimPop's post-close sequence: re-poll, then settle-check.
        const std::size_t k = w_->ring.try_pop_n(buf.data(), batch_);
        if (k > 0) {
          w_->popped.insert(w_->popped.end(), buf.begin(),
                            buf.begin() + static_cast<std::ptrdiff_t>(k));
          state_ = State::kTryPop;
        } else if (w_->ring.unconsumed() == 0) {
          state_ = State::kDone;  // closed AND settled: shutdown signal
        } else {
          // Reserved-but-unpublished slots remain: park until the
          // in-flight publish bumps tail_event_.
          state_ = State::kSnapshotEvent;
        }
        return;
      }
      case State::kSnapshotEvent:
        event_snapshot_ = w_->ring.tail_event_word();
        state_ = State::kRecheck;
        return;
      case State::kRecheck:
        state_ = w_->ring.pop_ready_or_settled() ? State::kTryPop
                                                 : State::kParked;
        return;
      case State::kParked:
        state_ = State::kTryPop;
        return;
      case State::kDone:
        return;
    }
  }
  bool Done() const override { return state_ == State::kDone; }
  bool Parked() const override {
    if (state_ == State::kAwaitReset) return !w_->reset_done;
    return state_ == State::kParked &&
           w_->ring.tail_event_word() == event_snapshot_;
  }

 private:
  enum class State {
    kAwaitReset,  // crash scenario's replay consumer: gated on ResetClaims
    kTryPop,
    kCheckClosed,
    kFinalPop,
    kSnapshotEvent,
    kRecheck,
    kParked,
    kDone,
  };
  MpmcWorld* w_;
  const std::size_t batch_;
  State state_ = State::kTryPop;
  uint32_t event_snapshot_ = 0;
};

/// Consumer draining via TryClaimPop with deferred batched releases (the
/// supervised ShardWorker shape): claims outlive batches, so close() can
/// land while a claimed span is held — the PR 5 regression, now under
/// concurrent producers.
class ClaimingMpmcConsumerThread : public VirtualThread {
 public:
  ClaimingMpmcConsumerThread(MpmcWorld* w, std::size_t batch,
                             std::size_t release_threshold)
      : w_(w), batch_(batch), release_threshold_(release_threshold) {}

  void Step() override {
    switch (state_) {
      case State::kClaim:
      case State::kFinalClaim: {
        const bool final_pass = state_ == State::kFinalClaim;
        std::size_t n = 0;
        int* span = w_->ring.TryClaimPop(batch_, &n);
        if (span != nullptr) {
          // Observing the span IS the consume for the oracle: a
          // double-handout shows up as an exactly-once failure.
          w_->popped.insert(w_->popped.end(), span, span + n);
          pending_ += n;
          state_ = State::kMaybeRelease;
        } else if (!final_pass) {
          state_ = State::kCheckClosed;
        } else if (w_->ring.unconsumed() == 0) {
          state_ = State::kFinalRelease;  // closed AND settled
        } else {
          state_ = State::kSnapshotEvent;  // in-flight publish: park
        }
        return;
      }
      case State::kMaybeRelease:
        if (pending_ >= release_threshold_) {
          w_->ring.ReleasePop(pending_);
          pending_ = 0;
        }
        state_ = State::kClaim;
        return;
      case State::kCheckClosed:
        state_ =
            w_->ring.closed() ? State::kFinalClaim : State::kSnapshotEvent;
        return;
      case State::kSnapshotEvent:
        event_snapshot_ = w_->ring.tail_event_word();
        state_ = State::kRecheck;
        return;
      case State::kRecheck:
        state_ = w_->ring.pop_ready_or_settled() ? State::kClaim
                                                 : State::kParked;
        return;
      case State::kParked:
        state_ = State::kClaim;
        return;
      case State::kFinalRelease:
        if (pending_ > 0) {
          w_->ring.ReleasePop(pending_);
          pending_ = 0;
        }
        state_ = State::kDone;
        return;
      case State::kDone:
        return;
    }
  }
  bool Done() const override { return state_ == State::kDone; }
  bool Parked() const override {
    return state_ == State::kParked &&
           w_->ring.tail_event_word() == event_snapshot_;
  }

 private:
  enum class State {
    kClaim,
    kMaybeRelease,
    kCheckClosed,
    kSnapshotEvent,
    kRecheck,
    kParked,
    kFinalClaim,
    kFinalRelease,
    kDone,
  };
  MpmcWorld* w_;
  const std::size_t batch_;
  const std::size_t release_threshold_;
  State state_ = State::kClaim;
  std::size_t pending_ = 0;
  uint32_t event_snapshot_ = 0;
};

/// Crash-scenario consumer: claims one element per step, COMMITS (records
/// to the oracle) only what it releases, and fail-stops after
/// `die_after` claims — holding an unreleased claimed span, exactly the
/// state a killed supervised worker leaves behind. Its unreleased claims
/// are deliberately NOT recorded: recovery must replay them exactly once.
class CrashingConsumerThread : public VirtualThread {
 public:
  CrashingConsumerThread(MpmcWorld* w, std::size_t release_threshold,
                         std::size_t die_after)
      : w_(w), release_threshold_(release_threshold), die_after_(die_after) {}

  void Step() override {
    switch (state_) {
      case State::kClaim: {
        std::size_t n = 0;
        int* span = w_->ring.TryClaimPop(1, &n);
        if (span != nullptr) {
          pending_.push_back(*span);
          ++claimed_;
          if (claimed_ == die_after_) {
            // Fail-stop mid-hold: uncommitted claims die with the worker.
            state_ = State::kDead;
            w_->crash_dead = true;
          } else {
            state_ = State::kMaybeRelease;
          }
        } else {
          state_ = State::kSnapshotEvent;
        }
        return;
      }
      case State::kMaybeRelease:
        if (pending_.size() >= release_threshold_) {
          w_->ring.ReleasePop(pending_.size());
          // Release == commit: only now do the values count as consumed.
          w_->popped.insert(w_->popped.end(), pending_.begin(),
                            pending_.end());
          pending_.clear();
        }
        state_ = State::kClaim;
        return;
      case State::kSnapshotEvent:
        event_snapshot_ = w_->ring.tail_event_word();
        state_ = State::kRecheck;
        return;
      case State::kRecheck:
        state_ = w_->ring.pop_ready_or_settled() ? State::kClaim
                                                 : State::kParked;
        return;
      case State::kParked:
        state_ = State::kClaim;
        return;
      case State::kDead:
        return;
    }
  }
  bool Done() const override { return state_ == State::kDead; }
  bool Parked() const override {
    return state_ == State::kParked &&
           w_->ring.tail_event_word() == event_snapshot_;
  }

 private:
  enum class State {
    kClaim,
    kMaybeRelease,
    kSnapshotEvent,
    kRecheck,
    kParked,
    kDead,
  };
  MpmcWorld* w_;
  const std::size_t release_threshold_;
  const std::size_t die_after_;
  State state_ = State::kClaim;
  std::size_t claimed_ = 0;
  std::vector<int> pending_;
  uint32_t event_snapshot_ = 0;
};

/// Supervisor: waits (parked) for the consumer's fail-stop, then rewinds
/// the claim cursor at quiescence — the RecoverAndRestart step, minus the
/// aggregator restore. Gating on crash_dead models "after join".
class SupervisorThread : public VirtualThread {
 public:
  explicit SupervisorThread(MpmcWorld* w) : w_(w) {}
  void Step() override {
    w_->ring.ResetClaims();
    w_->reset_done = true;
    done_ = true;
  }
  bool Done() const override { return done_; }
  bool Parked() const override { return !w_->crash_dead; }

 private:
  MpmcWorld* w_;
  bool done_ = false;
};

/// Closer, optionally gated on every producer finishing (the engine's
/// shutdown order); ungated it races the producers at every point.
class MpmcCloserThread : public VirtualThread {
 public:
  MpmcCloserThread(MpmcWorld* w, int await_producers)
      : w_(w), await_producers_(await_producers) {}
  void Step() override {
    w_->ring.close();
    done_ = true;
  }
  bool Done() const override { return done_; }
  bool Parked() const override {
    return w_->done_producers < await_producers_;
  }

 private:
  MpmcWorld* w_;
  const int await_producers_;
  bool done_ = false;
};

// ---------------------------------------------------------------------------
// Oracles
// ---------------------------------------------------------------------------

struct OwnedWorld {
  std::unique_ptr<MpmcWorld> state;
  std::vector<std::unique_ptr<VirtualThread>> threads;
  World world;
};

/// Exactly-once + per-producer order: decode (producer, index) from each
/// popped value and require every producer's subsequence to read 0,1,2,...
/// A duplicate, a skip, a reorder or a phantom value all fail here.
std::string CheckPerProducerOrder(const MpmcWorld& s) {
  std::vector<int> next(s.accepted_per.size(), 0);
  for (const int v : s.popped) {
    const int p = v / kProducerStride;
    const int i = v % kProducerStride;
    if (p < 0 || static_cast<std::size_t>(p) >= next.size()) {
      return "phantom value " + std::to_string(v);
    }
    if (i != next[static_cast<std::size_t>(p)]) {
      return "producer " + std::to_string(p) + " subsequence broken: got " +
             std::to_string(i) + ", expected " +
             std::to_string(next[static_cast<std::size_t>(p)]);
    }
    ++next[static_cast<std::size_t>(p)];
  }
  return "";
}

/// `conservation`: popped + unconsumed == reserved must hold after every
/// step (true whenever the oracle records at claim time — the crash
/// scenario records at release time and skips it). Final checks are shared:
/// everything reserved was published, consumed exactly once, and released.
void WireMpmcOracles(OwnedWorld* ow, bool conservation) {
  MpmcWorld* s = ow->state.get();
  ow->world.check_step = [s, conservation](const auto& fail) {
    if (s->popped.size() > s->published) {
      fail("consumed a slot nobody published: popped=" +
           std::to_string(s->popped.size()) + " published=" +
           std::to_string(s->published));
      return;
    }
    const std::string order = CheckPerProducerOrder(*s);
    if (!order.empty()) {
      fail("exactly-once/order violation: " + order);
      return;
    }
    if (conservation &&
        s->popped.size() + s->ring.unconsumed() != s->reserved) {
      fail("conservation violated mid-run: reserved=" +
           std::to_string(s->reserved) + " popped=" +
           std::to_string(s->popped.size()) + " unconsumed=" +
           std::to_string(s->ring.unconsumed()));
    }
  };
  ow->world.check_final = [s](const auto& fail) {
    uint64_t accepted = 0;
    for (const int a : s->accepted_per) {
      accepted += static_cast<uint64_t>(a);
    }
    if (s->published != s->reserved) {
      fail("reserved slot never published: reserved=" +
           std::to_string(s->reserved) + " published=" +
           std::to_string(s->published));
      return;
    }
    if (s->popped.size() != s->published || accepted != s->published) {
      fail("lost or duplicated slots at termination: published=" +
           std::to_string(s->published) + " popped=" +
           std::to_string(s->popped.size()));
      return;
    }
    if (s->ring.unconsumed() != 0 || s->ring.unreleased() != 0 ||
        !s->ring.empty()) {
      fail("ring not settled at termination: unconsumed=" +
           std::to_string(s->ring.unconsumed()) + " unreleased=" +
           std::to_string(s->ring.unreleased()));
      return;
    }
    const std::string order = CheckPerProducerOrder(*s);
    if (!order.empty()) fail("final order violation: " + order);
  };
  for (auto& t : ow->threads) ow->world.threads.push_back(t.get());
}

struct ModelConfig {
  int ops;
  std::size_t capacity;
  std::size_t batch;
  ExploreOptions explore;
};

ModelConfig ConfigFromEnv() {
  ModelConfig cfg;
  // Two scheduler steps per element (claim, publish) and two producers
  // double the depth per op vs. the SPSC model — hence the smaller default.
  cfg.ops = static_cast<int>(EnvKnob("SLICK_MODEL_MPMC_OPS", 2));
  cfg.capacity =
      static_cast<std::size_t>(EnvKnob("SLICK_MODEL_CAPACITY", 2));
  cfg.batch = 2;
  cfg.explore.preemption_bound =
      static_cast<int>(EnvKnob("SLICK_MODEL_PREEMPTIONS", 4));
  cfg.explore.max_schedules = static_cast<uint64_t>(
      EnvKnob("SLICK_MODEL_MAX_SCHEDULES", 2'000'000));
  return cfg;
}

void ReportAndExpectExhausted(const ExploreResult& r, const char* what) {
  EXPECT_FALSE(r.failed) << what << ": " << r.failure;
  EXPECT_TRUE(r.exhausted)
      << what << ": bounded schedule space not exhausted within "
      << r.schedules << " schedules — raise SLICK_MODEL_MAX_SCHEDULES";
  EXPECT_GT(r.schedules, 0u);
  std::printf("[model] %-32s schedules=%llu steps=%llu max_depth=%llu\n",
              what, static_cast<unsigned long long>(r.schedules),
              static_cast<unsigned long long>(r.steps),
              static_cast<unsigned long long>(r.max_depth));
}

// ---------------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------------

/// Steady state → shutdown: two producers racing claims and publishes into
/// one ring, the consumer draining concurrently, close() after both finish
/// (the engine's quiesce-then-stop order). Swept over capacities so the
/// wrap boundary (capacity 2 wraps every other claim) is exhausted too.
TEST(MpmcRingModel, TwoProducersDrainToClose) {
  const ModelConfig cfg = ConfigFromEnv();
  for (std::size_t cap : {std::size_t{2}, std::size_t{4}}) {
    ScheduleExplorer explorer(cfg.explore);
    const ExploreResult r = explorer.Explore([&] {
      auto ow = std::make_unique<OwnedWorld>();
      ow->state = std::make_unique<MpmcWorld>(cap, /*producers=*/2);
      ow->threads.push_back(std::make_unique<MpmcProducerThread>(
          ow->state.get(), /*id=*/0, cfg.ops, /*claim_max=*/1,
          /*close_when_done=*/false));
      ow->threads.push_back(std::make_unique<MpmcProducerThread>(
          ow->state.get(), /*id=*/1, cfg.ops, /*claim_max=*/1,
          /*close_when_done=*/false));
      ow->threads.push_back(std::make_unique<MpmcConsumerThread>(
          ow->state.get(), cfg.batch, /*await_reset=*/false));
      ow->threads.push_back(std::make_unique<MpmcCloserThread>(
          ow->state.get(), /*await_producers=*/2));
      WireMpmcOracles(ow.get(), /*conservation=*/true);
      return ow;
    });
    ReportAndExpectExhausted(
        r, ("TwoProducersDrainToClose/cap" + std::to_string(cap)).c_str());
  }
}

/// Multi-slot claims published piecewise: producer 0 claims spans of up to
/// two slots and publishes them one per step, so a claim's tail is still
/// unpublished while its head is live — the published-prefix walk in
/// TryClaimPop must stop at the gap, and the gap's eventual publish must
/// wake a parked consumer.
TEST(MpmcRingModel, PiecewisePublishKeepsPrefixContiguous) {
  const ModelConfig cfg = ConfigFromEnv();
  ScheduleExplorer explorer(cfg.explore);
  const ExploreResult r = explorer.Explore([&] {
    auto ow = std::make_unique<OwnedWorld>();
    ow->state = std::make_unique<MpmcWorld>(/*capacity=*/4, /*producers=*/2);
    ow->threads.push_back(std::make_unique<MpmcProducerThread>(
        ow->state.get(), /*id=*/0, cfg.ops, /*claim_max=*/2,
        /*close_when_done=*/false));
    ow->threads.push_back(std::make_unique<MpmcProducerThread>(
        ow->state.get(), /*id=*/1, cfg.ops, /*claim_max=*/1,
        /*close_when_done=*/false));
    ow->threads.push_back(std::make_unique<MpmcConsumerThread>(
        ow->state.get(), cfg.batch, /*await_reset=*/false));
    ow->threads.push_back(std::make_unique<MpmcCloserThread>(
        ow->state.get(), /*await_producers=*/2));
    WireMpmcOracles(ow.get(), /*conservation=*/true);
    return ow;
  });
  ReportAndExpectExhausted(r, "PiecewisePublishKeepsPrefixContiguous");
}

/// An UNGATED closer races both producers at every point — including
/// inside a claim/publish window. A producer cut off mid-stream must have
/// its already-reserved slots drain (reservations settle, ClaimPop waits
/// for the in-flight publish rather than stranding it) and its
/// never-claimed elements rejected, with nothing lost or duplicated.
TEST(MpmcRingModel, CloseRaceTwoProducers) {
  ModelConfig cfg = ConfigFromEnv();
  // An ungated closer is runnable at every decision point, which multiplies
  // the schedule count by the depth; the race windows it exists to exhaust
  // (close before a claim, inside a claim/publish window, after a publish)
  // are all per-element, so one element fewer per producer keeps every
  // window while staying under the schedule cap at the PR-gate defaults.
  cfg.ops = std::max(1, cfg.ops - 1);
  ScheduleExplorer explorer(cfg.explore);
  const ExploreResult r = explorer.Explore([&] {
    auto ow = std::make_unique<OwnedWorld>();
    ow->state =
        std::make_unique<MpmcWorld>(cfg.capacity, /*producers=*/2);
    ow->threads.push_back(std::make_unique<MpmcProducerThread>(
        ow->state.get(), /*id=*/0, cfg.ops, /*claim_max=*/1,
        /*close_when_done=*/false));
    ow->threads.push_back(std::make_unique<MpmcProducerThread>(
        ow->state.get(), /*id=*/1, cfg.ops, /*claim_max=*/1,
        /*close_when_done=*/false));
    ow->threads.push_back(std::make_unique<MpmcConsumerThread>(
        ow->state.get(), cfg.batch, /*await_reset=*/false));
    ow->threads.push_back(
        std::make_unique<MpmcCloserThread>(ow->state.get(),
                                           /*await_producers=*/0));
    WireMpmcOracles(ow.get(), /*conservation=*/true);
    return ow;
  });
  ReportAndExpectExhausted(r, "CloseRaceTwoProducers");
}

/// Supervised-worker drain shape under concurrent producers: claims with
/// deferred batched releases, close landing while a claimed span is held.
/// The held span must never be re-handed out, and the remainder must drain
/// exactly once (the PR 5 claim-cursor regression, on the MPMC ring).
TEST(MpmcRingModel, HeldClaimCloseDrainsOnce) {
  const ModelConfig cfg = ConfigFromEnv();
  ScheduleExplorer explorer(cfg.explore);
  const ExploreResult r = explorer.Explore([&] {
    auto ow = std::make_unique<OwnedWorld>();
    ow->state = std::make_unique<MpmcWorld>(/*capacity=*/4, /*producers=*/2);
    ow->threads.push_back(std::make_unique<MpmcProducerThread>(
        ow->state.get(), /*id=*/0, cfg.ops, /*claim_max=*/1,
        /*close_when_done=*/false));
    ow->threads.push_back(std::make_unique<MpmcProducerThread>(
        ow->state.get(), /*id=*/1, cfg.ops, /*claim_max=*/1,
        /*close_when_done=*/false));
    ow->threads.push_back(std::make_unique<ClaimingMpmcConsumerThread>(
        ow->state.get(), /*batch=*/2, /*release_threshold=*/3));
    ow->threads.push_back(std::make_unique<MpmcCloserThread>(
        ow->state.get(), /*await_producers=*/2));
    WireMpmcOracles(ow.get(), /*conservation=*/true);
    return ow;
  });
  ReportAndExpectExhausted(r, "HeldClaimCloseDrainsOnce");
}

/// Crash → ResetClaims → replay, under concurrent producers: the consumer
/// fail-stops holding an unreleased claimed span; the supervisor rewinds
/// the claim cursor at quiescence; a replay consumer re-drains. Everything
/// the dead consumer released stays consumed exactly once, everything it
/// held is replayed exactly once — bit-identical recovery's ring half.
/// Works precisely because releases never reset seq words (the replayed
/// span is still marked published).
TEST(MpmcRingModel, CrashResetClaimsReplaysExactlyOnce) {
  const ModelConfig cfg = ConfigFromEnv();
  ScheduleExplorer explorer(cfg.explore);
  const ExploreResult r = explorer.Explore([&] {
    auto ow = std::make_unique<OwnedWorld>();
    ow->state = std::make_unique<MpmcWorld>(/*capacity=*/4, /*producers=*/2);
    ow->threads.push_back(std::make_unique<MpmcProducerThread>(
        ow->state.get(), /*id=*/0, cfg.ops, /*claim_max=*/1,
        /*close_when_done=*/false));
    ow->threads.push_back(std::make_unique<MpmcProducerThread>(
        ow->state.get(), /*id=*/1, cfg.ops, /*claim_max=*/1,
        /*close_when_done=*/false));
    // Commits (releases) two, then dies holding the third claim.
    ow->threads.push_back(std::make_unique<CrashingConsumerThread>(
        ow->state.get(), /*release_threshold=*/2, /*die_after=*/3));
    ow->threads.push_back(std::make_unique<SupervisorThread>(ow->state.get()));
    ow->threads.push_back(std::make_unique<MpmcConsumerThread>(
        ow->state.get(), cfg.batch, /*await_reset=*/true));
    ow->threads.push_back(std::make_unique<MpmcCloserThread>(
        ow->state.get(), /*await_producers=*/2));
    // Release-time recording: mid-run conservation does not apply.
    WireMpmcOracles(ow.get(), /*conservation=*/false);
    return ow;
  });
  ReportAndExpectExhausted(r, "CrashResetClaimsReplaysExactlyOnce");
}

}  // namespace
}  // namespace slick::model
