// Deterministic model-checking of the ShmRing lease protocol (DESIGN.md
// §17): exhaustive bounded-preemption exploration of the
// claim → heartbeat-expiry → fence → tombstone → late-publish schedule
// against exactly-once oracles. The lease producer's claim (intent +
// tail CAS) and publish (the epoch-gated per-slot CAS walk) are SEPARATE
// scheduler-visible steps, and a reaper pass — running with a forged
// clock that makes every heartbeat stale — can land in any window
// between them. Checked on EVERY explored schedule:
//
//   * zombie must lose: a publish that follows a fence of its own lease
//     lands ZERO slots (the epoch gate and the reaper's tombstone
//     sequencing both force it), and an unfenced publish lands its whole
//     claim — nothing in between;
//   * tombstone conservation: at termination every reserved slot was
//     either consumed exactly once or tombstoned by the reaper —
//     popped + slots_tombstoned == reserved;
//   * no wedge / no lost wakeup: an abandoned claimed-but-unpublished
//     span parks the consumer; the reaper's repair must wake it (a
//     missed tail-event bump surfaces as a deadlock: no enabled thread
//     with work remaining);
//   * live traffic is untouched: a lease-less producer's values all
//     drain, in order, regardless of where the reap lands.
//
// Suite names contain "Model" and "Lease" so the TSan CI leg's -R filter
// picks them up. Budget knobs mirror the MPMC model: SLICK_MODEL_SHM_OPS
// [2], SLICK_MODEL_PREEMPTIONS [4], SLICK_MODEL_MAX_SCHEDULES [2M].

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "model/virtual_scheduler.h"
#include "runtime/shm/shm_ring.h"
#include "util/clock.h"

namespace slick::model {
namespace {

using runtime::ShmReapStats;
using runtime::ShmRing;

/// Value encoding: producer p's i-th element is p * 1000 + i.
constexpr int kStride = 1000;

/// Forged reap clock: far enough ahead that every real heartbeat is
/// stale at lease_ns = 1 — the reaper fences whatever it scans.
uint64_t FarFuture() { return util::MonotonicNanos() + (uint64_t{1} << 50); }

struct ShmWorld {
  explicit ShmWorld(std::size_t min_capacity)
      : ring(min_capacity, /*max_producers=*/2), accepted_per(2, 0) {}

  ShmRing<int> ring;
  std::vector<int> popped;        ///< committed consume order
  std::vector<int> accepted_per;  ///< per-producer landed counts
  uint64_t reserved = 0;          ///< slots claimed (lease or lease-less)
  uint64_t published = 0;         ///< slots that actually landed
  uint64_t fences = 0;            ///< reaper fences applied so far
  int reap_passes = 0;
  int done_producers = 0;
  std::string violation;  ///< set by threads; surfaced via check_step
};

/// The lease-holding producer under test: claims spans through its
/// LeaseProducer (one step — the intent stores + tail CAS), then
/// publishes the whole claim in one step (the epoch-gated CAS walk).
/// The step boundary between them is exactly where the reaper's fence
/// can land. Asserts the strict zombie-must-lose property in-schedule:
/// fenced between claim and publish ⇒ zero slots land; unfenced ⇒ the
/// whole claim lands. In `abandon` mode the first successful claim is
/// held forever — the die-before-publish shape whose repair must unwedge
/// a parked consumer.
class LeaseProducerThread : public VirtualThread {
 public:
  LeaseProducerThread(ShmWorld* w, int id, int n, std::size_t span_max,
                      bool abandon)
      : w_(w), id_(id), n_(n), span_max_(span_max), abandon_(abandon),
        producer_(w->ring.AttachProducer()) {}

  void Step() override {
    using Result = typename ShmRing<int>::LeaseProducer::Result;
    switch (state_) {
      case State::kClaim: {
        const std::size_t want = std::min(
            span_max_, static_cast<std::size_t>(n_ - next_));
        std::size_t k = 0;
        const Result r = producer_.TryBeginClaim(want, &k);
        if (r == Result::kOk) {
          for (std::size_t i = 0; i < k; ++i) {
            producer_.claim_data()[i] =
                id_ * kStride + next_ + static_cast<int>(i);
          }
          w_->reserved += k;
          claimed_ = k;
          fences_at_claim_ = w_->fences;
          if (abandon_) {
            state_ = State::kDone;  // die holding the unpublished span
            ++w_->done_producers;
          } else {
            state_ = State::kPublish;
          }
        } else if (r == Result::kFull) {
          state_ = State::kSnapshotEvent;
        } else {
          // kFenced (the reaper got us) or kClosed: stop producing.
          state_ = State::kDone;
          ++w_->done_producers;
        }
        return;
      }
      case State::kPublish: {
        const bool fenced_between = w_->fences > fences_at_claim_;
        const std::size_t landed = producer_.PublishClaimed();
        if (fenced_between && landed != 0) {
          w_->violation = "zombie won: fenced lease published " +
                          std::to_string(landed) + " slots";
        } else if (!fenced_between && landed != claimed_) {
          w_->violation = "unfenced publish landed " +
                          std::to_string(landed) + " of " +
                          std::to_string(claimed_);
        }
        for (std::size_t i = 0; i < landed; ++i) {
          ++w_->accepted_per[static_cast<std::size_t>(id_)];
        }
        w_->published += landed;
        if (landed < claimed_) {
          state_ = State::kDone;  // fenced: a zombie stops for good
          ++w_->done_producers;
        } else {
          next_ += static_cast<int>(claimed_);
          if (next_ == n_) {
            state_ = State::kDone;
            ++w_->done_producers;
          } else {
            state_ = State::kClaim;
          }
        }
        return;
      }
      case State::kSnapshotEvent:
        event_snapshot_ = w_->ring.head_event_word();
        state_ = State::kRecheck;
        return;
      case State::kRecheck:
        state_ = w_->ring.push_space_or_closed() ? State::kClaim
                                                 : State::kParked;
        return;
      case State::kParked:
        state_ = State::kClaim;
        return;
      case State::kDone:
        return;
    }
  }
  bool Done() const override { return state_ == State::kDone; }
  bool Parked() const override {
    return state_ == State::kParked &&
           w_->ring.head_event_word() == event_snapshot_;
  }

 private:
  enum class State {
    kClaim,
    kPublish,
    kSnapshotEvent,
    kRecheck,
    kParked,
    kDone,
  };
  ShmWorld* w_;
  const int id_;
  const int n_;
  const std::size_t span_max_;
  const bool abandon_;
  typename ShmRing<int>::LeaseProducer producer_;
  State state_ = State::kClaim;
  int next_ = 0;
  std::size_t claimed_ = 0;
  uint64_t fences_at_claim_ = 0;
  uint32_t event_snapshot_ = 0;
};

/// A lease-less in-process producer (the engine router's path): its
/// traffic must be completely unaffected by reaps of the lease table.
class PlainProducerThread : public VirtualThread {
 public:
  PlainProducerThread(ShmWorld* w, int id, int n) : w_(w), id_(id), n_(n) {}

  void Step() override {
    switch (state_) {
      case State::kClaim: {
        std::size_t k = 0;
        int* span = w_->ring.TryClaimPush(1, &k);
        if (span != nullptr) {
          span[0] = id_ * kStride + next_;
          w_->reserved += 1;
          span_ = span;
          state_ = State::kPublish;
        } else if (w_->ring.closed()) {
          state_ = State::kDone;
          ++w_->done_producers;
        } else {
          state_ = State::kSnapshotEvent;
        }
        return;
      }
      case State::kPublish:
        w_->ring.PublishPush(span_, 1);
        ++w_->published;
        ++w_->accepted_per[static_cast<std::size_t>(id_)];
        ++next_;
        if (next_ == n_) {
          state_ = State::kDone;
          ++w_->done_producers;
        } else {
          state_ = State::kClaim;
        }
        return;
      case State::kSnapshotEvent:
        event_snapshot_ = w_->ring.head_event_word();
        state_ = State::kRecheck;
        return;
      case State::kRecheck:
        state_ = w_->ring.push_space_or_closed() ? State::kClaim
                                                 : State::kParked;
        return;
      case State::kParked:
        state_ = State::kClaim;
        return;
      case State::kDone:
        return;
    }
  }
  bool Done() const override { return state_ == State::kDone; }
  bool Parked() const override {
    return state_ == State::kParked &&
           w_->ring.head_event_word() == event_snapshot_;
  }

 private:
  enum class State {
    kClaim,
    kPublish,
    kSnapshotEvent,
    kRecheck,
    kParked,
    kDone,
  };
  ShmWorld* w_;
  const int id_;
  const int n_;
  State state_ = State::kClaim;
  int next_ = 0;
  int* span_ = nullptr;
  uint32_t event_snapshot_ = 0;
};

/// The reaper: each step is one full ReapExpiredLeases pass under the
/// forged clock (every heartbeat stale, every pid alive — so every fence
/// it applies is a zombie fence). Two passes: the second proves reaps
/// are idempotent on an already-reclaimed table.
class ReaperThread : public VirtualThread {
 public:
  ReaperThread(ShmWorld* w, int passes) : w_(w), passes_(passes) {}

  void Step() override {
    const ShmReapStats st = w_->ring.ReapExpiredLeases(FarFuture(), 1);
    w_->fences += st.zombie_fences;
    ++w_->reap_passes;
  }
  bool Done() const override { return w_->reap_passes >= passes_; }
  bool Parked() const override { return false; }

 private:
  ShmWorld* w_;
  const int passes_;
};

/// Consumer mirroring the ShardWorker drain loop (as the MPMC model):
/// try_pop_n steps, value-based parking on the tail event word, and the
/// post-close settle check. Tombstone skips happen inside try_pop_n.
class ConsumerThread : public VirtualThread {
 public:
  ConsumerThread(ShmWorld* w, std::size_t batch) : w_(w), batch_(batch) {}

  void Step() override {
    std::vector<int> buf(batch_);
    switch (state_) {
      case State::kTryPop: {
        const std::size_t k = w_->ring.try_pop_n(buf.data(), batch_);
        if (k > 0) {
          w_->popped.insert(w_->popped.end(), buf.begin(),
                            buf.begin() + static_cast<std::ptrdiff_t>(k));
        } else {
          state_ = State::kCheckClosed;
        }
        return;
      }
      case State::kCheckClosed:
        state_ = w_->ring.closed() ? State::kFinalPop : State::kSnapshotEvent;
        return;
      case State::kFinalPop: {
        const std::size_t k = w_->ring.try_pop_n(buf.data(), batch_);
        if (k > 0) {
          w_->popped.insert(w_->popped.end(), buf.begin(),
                            buf.begin() + static_cast<std::ptrdiff_t>(k));
          state_ = State::kTryPop;
        } else if (w_->ring.unconsumed() == 0) {
          state_ = State::kDone;  // closed AND settled
        } else {
          // Reserved-but-unresolved slots remain: only a publish or a
          // reaper repair can settle them — park on the tail event.
          state_ = State::kSnapshotEvent;
        }
        return;
      }
      case State::kSnapshotEvent:
        event_snapshot_ = w_->ring.tail_event_word();
        state_ = State::kRecheck;
        return;
      case State::kRecheck:
        state_ = w_->ring.pop_ready_or_settled() ? State::kTryPop
                                                 : State::kParked;
        return;
      case State::kParked:
        state_ = State::kTryPop;
        return;
      case State::kDone:
        return;
    }
  }
  bool Done() const override { return state_ == State::kDone; }
  bool Parked() const override {
    return state_ == State::kParked &&
           w_->ring.tail_event_word() == event_snapshot_;
  }

 private:
  enum class State {
    kTryPop,
    kCheckClosed,
    kFinalPop,
    kSnapshotEvent,
    kRecheck,
    kParked,
    kDone,
  };
  ShmWorld* w_;
  const std::size_t batch_;
  State state_ = State::kTryPop;
  uint32_t event_snapshot_ = 0;
};

/// Closes once every producer retired AND the reaper finished — the
/// engine's quiesce-then-stop order, which is also what guarantees every
/// reserved slot is published-or-tombstoned before the settle check.
class CloserThread : public VirtualThread {
 public:
  CloserThread(ShmWorld* w, int await_producers, int await_passes)
      : w_(w), await_producers_(await_producers), await_passes_(await_passes) {}
  void Step() override {
    w_->ring.close();
    done_ = true;
  }
  bool Done() const override { return done_; }
  bool Parked() const override {
    return w_->done_producers < await_producers_ ||
           w_->reap_passes < await_passes_;
  }

 private:
  ShmWorld* w_;
  const int await_producers_;
  const int await_passes_;
  bool done_ = false;
};

// ---------------------------------------------------------------------------
// Oracles
// ---------------------------------------------------------------------------

struct OwnedWorld {
  std::unique_ptr<ShmWorld> state;
  std::vector<std::unique_ptr<VirtualThread>> threads;
  World world;
};

/// Exactly-once + per-producer order over LANDED values: each producer's
/// popped subsequence must read 0,1,2,... — a tombstoned (never-landed)
/// value surfacing, a duplicate, or a reorder all fail here.
std::string CheckOrder(const ShmWorld& s) {
  std::vector<int> next(s.accepted_per.size(), 0);
  for (const int v : s.popped) {
    const int p = v / kStride;
    const int i = v % kStride;
    if (p < 0 || static_cast<std::size_t>(p) >= next.size()) {
      return "phantom value " + std::to_string(v);
    }
    if (i != next[static_cast<std::size_t>(p)]) {
      return "producer " + std::to_string(p) + " subsequence broken: got " +
             std::to_string(i) + ", expected " +
             std::to_string(next[static_cast<std::size_t>(p)]);
    }
    ++next[static_cast<std::size_t>(p)];
  }
  return "";
}

void WireOracles(OwnedWorld* ow) {
  ShmWorld* s = ow->state.get();
  ow->world.check_step = [s](const auto& fail) {
    if (!s->violation.empty()) {
      fail(s->violation);
      return;
    }
    if (s->popped.size() > s->published) {
      fail("consumed a slot nobody published: popped=" +
           std::to_string(s->popped.size()) +
           " published=" + std::to_string(s->published));
      return;
    }
    const std::string order = CheckOrder(*s);
    if (!order.empty()) fail("exactly-once/order violation: " + order);
  };
  ow->world.check_final = [s](const auto& fail) {
    const runtime::ShmLeaseStats stats = s->ring.lease_stats();
    if (s->popped.size() != s->published) {
      fail("lost or duplicated slots: published=" +
           std::to_string(s->published) +
           " popped=" + std::to_string(s->popped.size()));
      return;
    }
    // Tombstone conservation: every reserved slot was consumed exactly
    // once or repaired by the reaper.
    if (s->popped.size() + stats.slots_tombstoned != s->reserved) {
      fail("reserved slot unaccounted: reserved=" +
           std::to_string(s->reserved) +
           " popped=" + std::to_string(s->popped.size()) +
           " tombstoned=" + std::to_string(stats.slots_tombstoned));
      return;
    }
    // The one lease was fenced-while-live and reclaimed exactly once.
    if (stats.leases_reclaimed != 1 || stats.zombie_fences != 1) {
      fail("lease accounting: reclaimed=" +
           std::to_string(stats.leases_reclaimed) +
           " zombie_fences=" + std::to_string(stats.zombie_fences));
      return;
    }
    if (s->ring.unconsumed() != 0 || s->ring.unreleased() != 0 ||
        !s->ring.empty()) {
      fail("ring not settled at termination");
      return;
    }
    const std::string order = CheckOrder(*s);
    if (!order.empty()) fail("final order violation: " + order);
  };
  for (auto& t : ow->threads) ow->world.threads.push_back(t.get());
}

ExploreOptions OptionsFromEnv() {
  ExploreOptions opts;
  opts.preemption_bound =
      static_cast<int>(EnvKnob("SLICK_MODEL_PREEMPTIONS", 4));
  opts.max_schedules =
      static_cast<uint64_t>(EnvKnob("SLICK_MODEL_MAX_SCHEDULES", 2'000'000));
  return opts;
}

void ReportAndExpectExhausted(const ExploreResult& r, const char* what) {
  EXPECT_FALSE(r.failed) << what << ": " << r.failure;
  EXPECT_TRUE(r.exhausted)
      << what << ": bounded schedule space not exhausted within "
      << r.schedules << " schedules — raise SLICK_MODEL_MAX_SCHEDULES";
  EXPECT_GT(r.schedules, 0u);
  std::printf("[model] %-36s schedules=%llu steps=%llu max_depth=%llu\n",
              what, static_cast<unsigned long long>(r.schedules),
              static_cast<unsigned long long>(r.steps),
              static_cast<unsigned long long>(r.max_depth));
}

// ---------------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------------

/// The zombie-resume race, exhausted: a lease producer streams spans
/// while a stale-clock reaper pass can land in every window — before the
/// first claim (claim returns kFenced), between a claim and its publish
/// (the publish must land ZERO), or after a publish (the next claim is
/// fenced). Swept over span widths so both single-slot and multi-slot
/// repairs are covered.
TEST(ShmLeaseModel, ZombiePublishAlwaysLosesToFence) {
  const int ops = static_cast<int>(EnvKnob("SLICK_MODEL_SHM_OPS", 2));
  for (std::size_t span_max : {std::size_t{1}, std::size_t{2}}) {
    ScheduleExplorer explorer(OptionsFromEnv());
    const ExploreResult r = explorer.Explore([&] {
      auto ow = std::make_unique<OwnedWorld>();
      ow->state = std::make_unique<ShmWorld>(/*min_capacity=*/4);
      ow->threads.push_back(std::make_unique<LeaseProducerThread>(
          ow->state.get(), /*id=*/0, ops, span_max, /*abandon=*/false));
      ow->threads.push_back(
          std::make_unique<ReaperThread>(ow->state.get(), /*passes=*/2));
      ow->threads.push_back(
          std::make_unique<ConsumerThread>(ow->state.get(), /*batch=*/2));
      ow->threads.push_back(std::make_unique<CloserThread>(
          ow->state.get(), /*await_producers=*/1, /*await_passes=*/2));
      WireOracles(ow.get());
      return ow;
    });
    ReportAndExpectExhausted(
        r, ("ZombiePublishAlwaysLosesToFence/span" + std::to_string(span_max))
               .c_str());
  }
}

/// Die-before-publish, with live traffic: one lease producer claims a
/// two-slot span and holds it forever (the abandoned reservation that
/// would wedge a plain MPMC ring), while a lease-less producer streams
/// around it. The consumer must end up parked on the hole in some
/// schedules, and the reaper's tombstone repair must wake it — a lost
/// wakeup or a stranded reservation surfaces as a deadlock; a tombstone
/// leaking into the popped stream fails the order oracle.
TEST(ShmLeaseModel, AbandonedClaimRepairUnwedgesConsumer) {
  const int ops = static_cast<int>(EnvKnob("SLICK_MODEL_SHM_OPS", 2));
  ScheduleExplorer explorer(OptionsFromEnv());
  const ExploreResult r = explorer.Explore([&] {
    auto ow = std::make_unique<OwnedWorld>();
    ow->state = std::make_unique<ShmWorld>(/*min_capacity=*/4);
    ow->threads.push_back(std::make_unique<LeaseProducerThread>(
        ow->state.get(), /*id=*/0, /*n=*/2, /*span_max=*/2,
        /*abandon=*/true));
    ow->threads.push_back(std::make_unique<PlainProducerThread>(
        ow->state.get(), /*id=*/1, ops));
    ow->threads.push_back(
        std::make_unique<ReaperThread>(ow->state.get(), /*passes=*/2));
    ow->threads.push_back(
        std::make_unique<ConsumerThread>(ow->state.get(), /*batch=*/2));
    ow->threads.push_back(std::make_unique<CloserThread>(
        ow->state.get(), /*await_producers=*/2, /*await_passes=*/2));
    WireOracles(ow.get());
    return ow;
  });
  ReportAndExpectExhausted(r, "AbandonedClaimRepairUnwedgesConsumer");
}

}  // namespace
}  // namespace slick::model
