// Deterministic model-checking of the ShardWorker drain loop and its
// epoch-snapshot quiescence edge (tests/model/, DESIGN.md §9).
//
// Three virtual threads over one real SpscRing + SlickDequeInv:
//   * router    — the coordinator's routing half: blocking-pushes values
//                 1..N (push_n protocol incl. the WaitForSpace park),
//                 then closes the ring (ShardWorker::Stop's first half);
//   * worker    — ShardWorker::Run verbatim: pop_n protocol, slide every
//                 popped element into the aggregator, then publish the
//                 cumulative `processed` count (the release-store edge);
//   * snapshot  — the coordinator's quiescent read: parked until
//                 processed == N (the acquire-load spin), then reads
//                 aggregator.query() exactly once.
//
// Checked on EVERY explored schedule: processed is monotone and equals
// the number of slides; the snapshot fires only at true quiescence and
// its answer equals the sequential oracle (sum of the last `window`
// routed values); at termination every routed element was slid exactly
// once. A protocol edit that lets the snapshot observe a half-drained
// aggregator, or strands elements in the ring, fails here with the
// exact interleaving printed.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/slick_deque_inv.h"
#include "model/virtual_scheduler.h"
#include "ops/arith.h"
#include "runtime/spsc_ring.h"

namespace slick::model {
namespace {

using core::SlickDequeInv;
using runtime::SpscRing;

struct ShardWorld {
  ShardWorld(std::size_t window, std::size_t min_capacity)
      : ring(min_capacity), agg(window) {}

  SpscRing<int64_t> ring;
  SlickDequeInv<ops::SumInt> agg;
  int64_t routed = 0;     ///< elements accepted by push (router-side count)
  int64_t processed = 0;  ///< models ShardWorker::processed_ (SC step model)
  int64_t slides = 0;     ///< ground truth: slide() invocations
  bool snapshot_taken = false;
  int64_t snapshot_value = 0;
  int64_t snapshot_processed_seen = 0;
};

/// Router: push_n(1..N) with the full WaitForSpace snapshot/recheck/park
/// protocol (same step machine as the SpscRing model's producer), then
/// close(). The ring is never closed before all N are accepted, matching
/// ParallelEngine's shutdown order (route everything, then Stop()).
class RouterThread : public VirtualThread {
 public:
  RouterThread(ShardWorld* w, int64_t n) : w_(w), n_(n) {}

  void Step() override {
    switch (state_) {
      case State::kTryPush: {
        const int64_t v = next_ + 1;  // route 1..N so sums are non-trivial
        if (w_->ring.try_push(v)) {
          ++w_->routed;
          ++next_;
          if (next_ == n_) state_ = State::kClose;
        } else {
          state_ = State::kSnapshotEvent;
        }
        return;
      }
      case State::kSnapshotEvent:
        event_snapshot_ = w_->ring.head_event_word();
        state_ = State::kRecheck;
        return;
      case State::kRecheck:
        if (w_->ring.size() < w_->ring.capacity()) {
          state_ = State::kTryPush;
        } else {
          state_ = State::kParked;
        }
        return;
      case State::kParked:
        state_ = State::kTryPush;
        return;
      case State::kClose:
        w_->ring.close();
        state_ = State::kDone;
        return;
      case State::kDone:
        return;
    }
  }
  bool Done() const override { return state_ == State::kDone; }
  bool Parked() const override {
    return state_ == State::kParked &&
           w_->ring.head_event_word() == event_snapshot_;
  }

 private:
  enum class State {
    kTryPush,
    kSnapshotEvent,
    kRecheck,
    kParked,
    kClose,
    kDone,
  };
  ShardWorld* w_;
  const int64_t n_;
  State state_ = State::kTryPush;
  int64_t next_ = 0;
  uint32_t event_snapshot_ = 0;
};

/// Worker: ShardWorker::Run decomposed into scheduler-visible steps. One
/// step pops a batch (try_pop_n); draining the batch into the aggregator
/// is a separate step per element, and the processed-count publish is its
/// own step after the batch — so the snapshot thread can interleave at
/// every point the real coordinator could observe.
class WorkerThread : public VirtualThread {
 public:
  WorkerThread(ShardWorld* w, std::size_t batch) : w_(w), batch_(batch) {}

  void Step() override {
    switch (state_) {
      case State::kTryPop: {
        std::vector<int64_t> buf(batch_);
        const std::size_t k = w_->ring.try_pop_n(buf.data(), batch_);
        if (k > 0) {
          pending_.assign(buf.begin(),
                          buf.begin() + static_cast<std::ptrdiff_t>(k));
          slid_ = 0;
          state_ = State::kSlide;
        } else {
          state_ = State::kCheckClosed;
        }
        return;
      }
      case State::kSlide:
        w_->agg.slide(pending_[slid_]);
        ++w_->slides;
        if (++slid_ == pending_.size()) state_ = State::kPublish;
        return;
      case State::kPublish:
        // processed_.store(done, release) — after this step the snapshot
        // thread may legitimately observe the new count.
        w_->processed += static_cast<int64_t>(pending_.size());
        state_ = State::kTryPop;
        return;
      case State::kCheckClosed:
        state_ =
            w_->ring.closed() ? State::kFinalPop : State::kSnapshotEvent;
        return;
      case State::kFinalPop: {
        // pop_n's post-close re-poll: elements published before close()
        // must drain; 0 is the shutdown signal.
        std::vector<int64_t> buf(batch_);
        const std::size_t k = w_->ring.try_pop_n(buf.data(), batch_);
        if (k > 0) {
          pending_.assign(buf.begin(),
                          buf.begin() + static_cast<std::ptrdiff_t>(k));
          slid_ = 0;
          state_ = State::kSlide;
        } else {
          state_ = State::kDone;
        }
        return;
      }
      case State::kSnapshotEvent:
        event_snapshot_ = w_->ring.tail_event_word();
        state_ = State::kRecheck;
        return;
      case State::kRecheck:
        if (!w_->ring.empty() || w_->ring.closed()) {
          state_ = State::kTryPop;
        } else {
          state_ = State::kParked;
        }
        return;
      case State::kParked:
        state_ = State::kTryPop;
        return;
      case State::kDone:
        return;
    }
  }
  bool Done() const override { return state_ == State::kDone; }
  bool Parked() const override {
    return state_ == State::kParked &&
           w_->ring.tail_event_word() == event_snapshot_;
  }

 private:
  enum class State {
    kTryPop,
    kSlide,
    kPublish,
    kCheckClosed,
    kFinalPop,
    kSnapshotEvent,
    kRecheck,
    kParked,
    kDone,
  };
  ShardWorld* w_;
  const std::size_t batch_;
  State state_ = State::kTryPop;
  std::vector<int64_t> pending_;
  std::size_t slid_ = 0;
  uint32_t event_snapshot_ = 0;
};

/// Snapshot: the coordinator's quiescent read. Parked until the worker
/// has published processed == N (modeling the acquire-load spin in
/// ParallelEngine's checkpoint/query path), then reads the aggregate once.
class SnapshotThread : public VirtualThread {
 public:
  SnapshotThread(ShardWorld* w, int64_t n) : w_(w), n_(n) {}

  void Step() override {
    w_->snapshot_taken = true;
    w_->snapshot_processed_seen = w_->processed;
    w_->snapshot_value = w_->agg.query();
    done_ = true;
  }
  bool Done() const override { return done_; }
  bool Parked() const override { return w_->processed != n_; }

 private:
  ShardWorld* w_;
  const int64_t n_;
  bool done_ = false;
};

struct OwnedShardWorld {
  std::unique_ptr<ShardWorld> state;
  std::vector<std::unique_ptr<VirtualThread>> threads;
  World world;
};

/// Sequential oracle: SumInt over the last `window` of 1..n (identity-
/// padded, matching SlickDequeInv's pre-filled partials).
int64_t OracleWindowSum(int64_t n, std::size_t window) {
  int64_t sum = 0;
  const int64_t lo = n > static_cast<int64_t>(window)
                         ? n - static_cast<int64_t>(window) + 1
                         : 1;
  for (int64_t v = lo; v <= n; ++v) sum += v;
  return sum;
}

void WireOracles(OwnedShardWorld* ow, int64_t n, std::size_t window) {
  ShardWorld* s = ow->state.get();
  const int64_t expect = OracleWindowSum(n, window);
  ow->world.check_step = [s, n](const auto& fail) {
    if (s->processed > s->slides) {
      fail("processed count published ahead of the slides it covers");
      return;
    }
    if (s->slides > s->routed) {
      fail("worker slid an element the router never accepted");
      return;
    }
    if (s->snapshot_taken && s->snapshot_processed_seen != n) {
      fail("snapshot fired before quiescence: saw processed=" +
           std::to_string(s->snapshot_processed_seen));
    }
  };
  ow->world.check_final = [s, n, expect](const auto& fail) {
    if (s->slides != n || !s->ring.empty()) {
      fail("drain incomplete at termination: slides=" +
           std::to_string(s->slides) + " in_ring=" +
           std::to_string(s->ring.size()));
      return;
    }
    if (!s->snapshot_taken) {
      fail("snapshot thread never ran (quiescence predicate never held)");
      return;
    }
    if (s->snapshot_value != expect) {
      fail("epoch snapshot diverged from oracle: got " +
           std::to_string(s->snapshot_value) + " want " +
           std::to_string(expect));
    }
  };
  for (auto& t : ow->threads) ow->world.threads.push_back(t.get());
}

ExploreOptions ExploreFromEnv() {
  ExploreOptions opts;
  opts.preemption_bound =
      static_cast<int>(EnvKnob("SLICK_MODEL_PREEMPTIONS", 4));
  opts.max_schedules = static_cast<uint64_t>(
      EnvKnob("SLICK_MODEL_MAX_SCHEDULES", 2'000'000));
  return opts;
}

void RunScenario(const char* what, int64_t n, std::size_t window,
                 std::size_t capacity, std::size_t batch) {
  ScheduleExplorer explorer(ExploreFromEnv());
  const ExploreResult r = explorer.Explore([&] {
    auto ow = std::make_unique<OwnedShardWorld>();
    ow->state = std::make_unique<ShardWorld>(window, capacity);
    ow->threads.push_back(
        std::make_unique<RouterThread>(ow->state.get(), n));
    ow->threads.push_back(
        std::make_unique<WorkerThread>(ow->state.get(), batch));
    ow->threads.push_back(
        std::make_unique<SnapshotThread>(ow->state.get(), n));
    WireOracles(ow.get(), n, window);
    return ow;
  });
  EXPECT_FALSE(r.failed) << what << ": " << r.failure;
  EXPECT_TRUE(r.exhausted)
      << what << ": schedule space not exhausted within " << r.schedules
      << " schedules — raise SLICK_MODEL_MAX_SCHEDULES";
  EXPECT_GT(r.schedules, 0u);
  std::printf("[model] %-28s schedules=%llu steps=%llu max_depth=%llu\n",
              what, static_cast<unsigned long long>(r.schedules),
              static_cast<unsigned long long>(r.steps),
              static_cast<unsigned long long>(r.max_depth));
}

/// Steady state: window smaller than the stream, so the snapshot answer
/// exercises eviction (⊖) as well as ⊕.
TEST(ShardDrainModel, DrainThenSnapshot) {
  const auto n = static_cast<int64_t>(EnvKnob("SLICK_MODEL_OPS", 3));
  RunScenario("DrainThenSnapshot", n, /*window=*/2,
              static_cast<std::size_t>(EnvKnob("SLICK_MODEL_CAPACITY", 2)),
              /*batch=*/2);
}

/// Window wider than the stream: the identity-padded partials path.
TEST(ShardDrainModel, WideWindowSnapshot) {
  const auto n = static_cast<int64_t>(EnvKnob("SLICK_MODEL_OPS", 3));
  RunScenario("WideWindowSnapshot", n, /*window=*/8,
              static_cast<std::size_t>(EnvKnob("SLICK_MODEL_CAPACITY", 2)),
              /*batch=*/2);
}

/// batch=1 maximizes publish points: processed is bumped after every
/// element, so the snapshot's quiescence predicate flips at the finest
/// possible granularity.
TEST(ShardDrainModel, PerElementPublish) {
  const auto n = static_cast<int64_t>(EnvKnob("SLICK_MODEL_OPS", 3));
  RunScenario("PerElementPublish", n, /*window=*/2,
              static_cast<std::size_t>(EnvKnob("SLICK_MODEL_CAPACITY", 2)),
              /*batch=*/1);
}

}  // namespace
}  // namespace slick::model
