// Deterministic model-checking of the event-time watermark advance
// protocol (tests/model/, DESIGN.md §9 and §13).
//
// Three virtual threads over one real SpscRing<Timed> + OooTree:
//   * router    — blocking-pushes N timed tuples (possibly out of order
//                 in event time), then closes the ring;
//   * worker    — ShardWorker's event-mode drain verbatim at step
//                 granularity: pop a batch, Insert each tuple into the
//                 tree, raise the watermark gauge to the batch max, THEN
//                 publish the cumulative processed count. The gauge set
//                 strictly precedes the processed release-store — the
//                 ordering EventQuery relies on;
//   * sampler   — ParallelShardedEngine::EventQuery's quiescent read:
//                 parked until processed == N, then samples the gauge,
//                 BulkEvicts below the window low edge and answers the
//                 windowed range aggregate.
//
// Checked on EVERY explored schedule: the gauge is monotone and never
// runs ahead of the inserts it covers (a sampler that acquires processed
// may trust it); the sampled watermark equals the true max event time at
// quiescence; the windowed answer and eviction count match the
// sequential oracle. An edit that publishes `processed` before setting
// the gauge — or lets the gauge advance past undrained tuples — fails
// here with the exact interleaving printed.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "model/virtual_scheduler.h"
#include "ops/arith.h"
#include "runtime/spsc_ring.h"
#include "window/ooo_tree.h"

namespace slick::model {
namespace {

using runtime::SpscRing;
using Event = window::Timed<int64_t>;

struct WatermarkWorld {
  explicit WatermarkWorld(std::size_t min_capacity) : ring(min_capacity) {}

  SpscRing<Event> ring;
  window::OooTree<ops::SumInt> tree;
  int64_t routed = 0;          ///< tuples accepted by push (router-side)
  int64_t processed = 0;       ///< models ShardWorker::processed_
  uint64_t gauge = 0;          ///< models ShardCounters::watermark
  uint64_t max_inserted = 0;   ///< ground truth: max ts Insert()ed so far
  int64_t inserts = 0;         ///< ground truth: Insert() invocations
  bool sampled = false;
  uint64_t sampled_wm = 0;
  int64_t sampled_processed = 0;
  std::size_t evicted = 0;
  int64_t answer = 0;
};

/// Router: blocking-push the fixed event list with the full WaitForSpace
/// snapshot/recheck/park protocol, then close() — ParallelEngine's
/// shutdown order (route everything, then Stop()).
class TimedRouterThread : public VirtualThread {
 public:
  TimedRouterThread(WatermarkWorld* w, std::vector<Event> events)
      : w_(w), events_(std::move(events)) {}

  void Step() override {
    switch (state_) {
      case State::kTryPush:
        if (w_->ring.try_push(events_[next_])) {
          ++w_->routed;
          if (++next_ == events_.size()) state_ = State::kClose;
        } else {
          state_ = State::kSnapshotEvent;
        }
        return;
      case State::kSnapshotEvent:
        event_snapshot_ = w_->ring.head_event_word();
        state_ = State::kRecheck;
        return;
      case State::kRecheck:
        state_ = w_->ring.size() < w_->ring.capacity() ? State::kTryPush
                                                       : State::kParked;
        return;
      case State::kParked:
        state_ = State::kTryPush;
        return;
      case State::kClose:
        w_->ring.close();
        state_ = State::kDone;
        return;
      case State::kDone:
        return;
    }
  }
  bool Done() const override { return state_ == State::kDone; }
  bool Parked() const override {
    return state_ == State::kParked &&
           w_->ring.head_event_word() == event_snapshot_;
  }

 private:
  enum class State {
    kTryPush,
    kSnapshotEvent,
    kRecheck,
    kParked,
    kClose,
    kDone,
  };
  WatermarkWorld* w_;
  const std::vector<Event> events_;
  State state_ = State::kTryPush;
  std::size_t next_ = 0;
  uint32_t event_snapshot_ = 0;
};

/// Worker: the event-mode drain loop at step granularity. Per batch the
/// steps are Insert (one per element), SetGauge, Publish — in that order,
/// mirroring ShardWorker: the watermark gauge write happens-before the
/// processed release-store, so a reader that acquires `processed` also
/// sees a gauge covering every drained tuple.
class EventWorkerThread : public VirtualThread {
 public:
  EventWorkerThread(WatermarkWorld* w, std::size_t batch)
      : w_(w), batch_(batch) {}

  void Step() override {
    switch (state_) {
      case State::kTryPop: {
        std::vector<Event> buf(batch_);
        const std::size_t k = w_->ring.try_pop_n(buf.data(), batch_);
        if (k > 0) {
          pending_.assign(buf.begin(),
                          buf.begin() + static_cast<std::ptrdiff_t>(k));
          done_in_batch_ = 0;
          state_ = State::kInsert;
        } else {
          state_ = State::kCheckClosed;
        }
        return;
      }
      case State::kInsert: {
        const Event& e = pending_[done_in_batch_];
        w_->tree.Insert(e.t, e.v);
        ++w_->inserts;
        w_->max_inserted = std::max(w_->max_inserted, e.t);
        if (++done_in_batch_ == pending_.size()) state_ = State::kSetGauge;
        return;
      }
      case State::kSetGauge: {
        uint64_t wm = w_->gauge;
        for (const Event& e : pending_) wm = std::max(wm, e.t);
        w_->gauge = wm;
        state_ = State::kPublish;
        return;
      }
      case State::kPublish:
        w_->processed += static_cast<int64_t>(pending_.size());
        state_ = State::kTryPop;
        return;
      case State::kCheckClosed:
        state_ =
            w_->ring.closed() ? State::kFinalPop : State::kSnapshotEvent;
        return;
      case State::kFinalPop: {
        std::vector<Event> buf(batch_);
        const std::size_t k = w_->ring.try_pop_n(buf.data(), batch_);
        if (k > 0) {
          pending_.assign(buf.begin(),
                          buf.begin() + static_cast<std::ptrdiff_t>(k));
          done_in_batch_ = 0;
          state_ = State::kInsert;
        } else {
          state_ = State::kDone;
        }
        return;
      }
      case State::kSnapshotEvent:
        event_snapshot_ = w_->ring.tail_event_word();
        state_ = State::kRecheck;
        return;
      case State::kRecheck:
        state_ = (!w_->ring.empty() || w_->ring.closed()) ? State::kTryPop
                                                          : State::kParked;
        return;
      case State::kParked:
        state_ = State::kTryPop;
        return;
      case State::kDone:
        return;
    }
  }
  bool Done() const override { return state_ == State::kDone; }
  bool Parked() const override {
    return state_ == State::kParked &&
           w_->ring.tail_event_word() == event_snapshot_;
  }

 private:
  enum class State {
    kTryPop,
    kInsert,
    kSetGauge,
    kPublish,
    kCheckClosed,
    kFinalPop,
    kSnapshotEvent,
    kRecheck,
    kParked,
    kDone,
  };
  WatermarkWorld* w_;
  const std::size_t batch_;
  State state_ = State::kTryPop;
  std::vector<Event> pending_;
  std::size_t done_in_batch_ = 0;
  uint32_t event_snapshot_ = 0;
};

/// Sampler: EventQuery's read half. Parked until the worker published
/// processed == N (the AwaitEpoch acquire), then in separate steps:
/// sample the gauge, BulkEvict below the window low edge, and answer the
/// windowed range aggregate — each a distinct interleaving point.
class WatermarkSamplerThread : public VirtualThread {
 public:
  WatermarkSamplerThread(WatermarkWorld* w, int64_t n, uint64_t range)
      : w_(w), n_(n), range_(range) {}

  void Step() override {
    switch (state_) {
      case State::kSampleGauge:
        w_->sampled = true;
        w_->sampled_processed = w_->processed;
        w_->sampled_wm = w_->gauge;
        state_ = State::kEvict;
        return;
      case State::kEvict:
        w_->evicted = w_->tree.BulkEvict(Low());
        state_ = State::kAnswer;
        return;
      case State::kAnswer: {
        int64_t acc = ops::SumInt::identity();
        if (w_->tree.RangeAggregate(Low(), w_->sampled_wm, &acc)) {
          w_->answer = acc;
        }
        state_ = State::kDone;
        return;
      }
      case State::kDone:
        return;
    }
  }
  bool Done() const override { return state_ == State::kDone; }
  bool Parked() const override {
    return state_ == State::kSampleGauge && w_->processed != n_;
  }

 private:
  enum class State { kSampleGauge, kEvict, kAnswer, kDone };
  uint64_t Low() const {
    return w_->sampled_wm >= range_ ? w_->sampled_wm - range_ + 1 : 0;
  }
  WatermarkWorld* w_;
  const int64_t n_;
  const uint64_t range_;
  State state_ = State::kSampleGauge;
};

struct OwnedWatermarkWorld {
  std::unique_ptr<WatermarkWorld> state;
  std::vector<std::unique_ptr<VirtualThread>> threads;
  World world;
};

struct Oracle {
  uint64_t max_ts = 0;
  uint64_t low = 0;
  int64_t windowed_sum = 0;
  std::size_t below_low = 0;
};

Oracle OracleFor(const std::vector<Event>& events, uint64_t range) {
  Oracle o;
  for (const Event& e : events) o.max_ts = std::max(o.max_ts, e.t);
  o.low = o.max_ts >= range ? o.max_ts - range + 1 : 0;
  for (const Event& e : events) {
    if (e.t < o.low) {
      ++o.below_low;
    } else if (e.t <= o.max_ts) {
      o.windowed_sum += e.v;
    }
  }
  return o;
}

void WireOracles(OwnedWatermarkWorld* ow, const std::vector<Event>& events,
                 uint64_t range) {
  WatermarkWorld* s = ow->state.get();
  const auto n = static_cast<int64_t>(events.size());
  const Oracle oracle = OracleFor(events, range);
  // Shared so the monotonicity cursor stays alive with the world.
  auto cursor = std::make_shared<uint64_t>(0);
  ow->world.check_step = [s, n, cursor](const auto& fail) {
    if (s->gauge > s->max_inserted) {
      fail("watermark gauge ran ahead of the inserts it covers: gauge=" +
           std::to_string(s->gauge) + " max_inserted=" +
           std::to_string(s->max_inserted));
      return;
    }
    if (s->gauge < *cursor) {
      fail("watermark gauge moved backwards: " + std::to_string(*cursor) +
           " -> " + std::to_string(s->gauge));
      return;
    }
    *cursor = s->gauge;
    if (s->inserts > s->routed) {
      fail("worker inserted a tuple the router never accepted");
      return;
    }
    if (s->sampled && s->sampled_processed != n) {
      fail("sampler fired before quiescence: saw processed=" +
           std::to_string(s->sampled_processed));
    }
  };
  ow->world.check_final = [s, n, oracle](const auto& fail) {
    if (s->inserts != n || !s->ring.empty()) {
      fail("drain incomplete at termination: inserts=" +
           std::to_string(s->inserts) + " in_ring=" +
           std::to_string(s->ring.size()));
      return;
    }
    if (!s->sampled) {
      fail("sampler never ran (quiescence predicate never held)");
      return;
    }
    if (s->sampled_wm != oracle.max_ts) {
      fail("sampled watermark diverged: got " +
           std::to_string(s->sampled_wm) + " want " +
           std::to_string(oracle.max_ts) +
           " (gauge set must precede the processed publish)");
      return;
    }
    if (s->evicted != oracle.below_low) {
      fail("bulk eviction count diverged: got " +
           std::to_string(s->evicted) + " want " +
           std::to_string(oracle.below_low));
      return;
    }
    if (s->answer != oracle.windowed_sum) {
      fail("windowed answer diverged: got " + std::to_string(s->answer) +
           " want " + std::to_string(oracle.windowed_sum));
      return;
    }
    if (!s->tree.CheckInvariants()) {
      fail("OooTree invariants violated after the sampled eviction");
    }
  };
  for (auto& t : ow->threads) ow->world.threads.push_back(t.get());
}

ExploreOptions ExploreFromEnv() {
  ExploreOptions opts;
  opts.preemption_bound =
      static_cast<int>(EnvKnob("SLICK_MODEL_PREEMPTIONS", 4));
  opts.max_schedules = static_cast<uint64_t>(
      EnvKnob("SLICK_MODEL_MAX_SCHEDULES", 2'000'000));
  return opts;
}

void RunScenario(const char* what, const std::vector<Event>& events,
                 uint64_t range, std::size_t capacity, std::size_t batch) {
  ScheduleExplorer explorer(ExploreFromEnv());
  const ExploreResult r = explorer.Explore([&] {
    auto ow = std::make_unique<OwnedWatermarkWorld>();
    ow->state = std::make_unique<WatermarkWorld>(capacity);
    ow->threads.push_back(
        std::make_unique<TimedRouterThread>(ow->state.get(), events));
    ow->threads.push_back(
        std::make_unique<EventWorkerThread>(ow->state.get(), batch));
    ow->threads.push_back(std::make_unique<WatermarkSamplerThread>(
        ow->state.get(), static_cast<int64_t>(events.size()), range));
    WireOracles(ow.get(), events, range);
    return ow;
  });
  EXPECT_FALSE(r.failed) << what << ": " << r.failure;
  EXPECT_TRUE(r.exhausted)
      << what << ": schedule space not exhausted within " << r.schedules
      << " schedules — raise SLICK_MODEL_MAX_SCHEDULES";
  EXPECT_GT(r.schedules, 0u);
  std::printf("[model] %-28s schedules=%llu steps=%llu max_depth=%llu\n",
              what, static_cast<unsigned long long>(r.schedules),
              static_cast<unsigned long long>(r.steps),
              static_cast<unsigned long long>(r.max_depth));
}

/// Out-of-order arrivals with an eviction at the sample: the last-routed
/// tuple is NOT the newest, so a gauge computed from arrival order alone
/// (instead of the batch max) diverges, and two tuples fall below the
/// window low edge of the final sample.
TEST(WatermarkModel, OutOfOrderDrainThenSample) {
  RunScenario("OutOfOrderDrainThenSample",
              {{5, 1}, {3, 2}, {9, 3}, {7, 4}}, /*range=*/3,
              static_cast<std::size_t>(EnvKnob("SLICK_MODEL_CAPACITY", 2)),
              /*batch=*/2);
}

/// Duplicate event times merge in arrival order inside the tree; the
/// gauge must still advance exactly once past them.
TEST(WatermarkModel, DuplicateTimestampsMerge) {
  RunScenario("DuplicateTimestampsMerge",
              {{4, 1}, {4, 2}, {7, 3}}, /*range=*/10,
              static_cast<std::size_t>(EnvKnob("SLICK_MODEL_CAPACITY", 2)),
              /*batch=*/2);
}

/// batch=1 maximizes gauge-set/publish points: every element gets its own
/// Insert → SetGauge → Publish triple, the finest interleaving the real
/// worker can produce.
TEST(WatermarkModel, PerElementGaugePublish) {
  RunScenario("PerElementGaugePublish",
              {{6, 1}, {2, 2}, {8, 3}}, /*range=*/4,
              static_cast<std::size_t>(EnvKnob("SLICK_MODEL_CAPACITY", 2)),
              /*batch=*/1);
}

}  // namespace
}  // namespace slick::model
