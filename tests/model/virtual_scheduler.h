#pragma once
// Deterministic cooperative model checker for the parallel runtime
// (tests/model/, see DESIGN.md §9).
//
// A *world* is a set of virtual threads over shared state (a real SpscRing
// plus oracles). Each thread is a hand-written step machine whose Step()
// executes one scheduler-visible action — one ring operation, one
// eventcount snapshot, one wait-path recheck — exactly mirroring the code
// under test. The explorer enumerates every interleaving of those steps by
// stateless replay (CHESS-style): a schedule is the sequence of thread
// choices at each decision point; after a terminal run, backtrack to the
// deepest decision with an untried alternative and re-run the world from
// scratch along the new prefix.
//
// Pruning is bounded preemption: a context switch away from a thread that
// is still enabled counts against `preemption_bound`; forced switches
// (running thread parked or finished) are free. With the bound exhausted
// the previously running thread is the only allowed choice while it stays
// enabled. Bound < 0 means unbounded (full DFS). Empirically (CHESS,
// dBug) a small bound covers almost all protocol bugs at a fraction of
// the schedule count; the nightly job raises it via env knobs.
//
// Blocking is modeled with park predicates: a thread that would call
// std::atomic::wait(e) parks on "event word != e" and becomes enabled
// again only once the predicate holds — i.e. wakes are *value-based*, the
// guarantee the eventcount protocol actually relies on. A protocol edit
// that stops bumping an event word therefore shows up here as a deadlock
// (lost wakeup): a state where some thread is not done, yet nothing is
// enabled.
//
// Memory-model scope: steps execute sequentially consistently on one OS
// thread, so this checker proves protocol-level properties (FIFO order,
// no double-consume, conservation, no lost wakeup) over *all* bounded
// interleavings at step granularity. Races *inside* one ring operation
// (compiler/hardware reordering of its individual loads and stores) are
// out of scope — that is what the TSan CI leg and the fuzz suite cover.

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace slick::model {

/// Reads a non-negative (or -1 = unbounded) integer env knob, mirroring
/// SLICK_FUZZ_TRIALS: the PR gate runs defaults, the nightly job cranks
/// SLICK_MODEL_OPS / SLICK_MODEL_CAPACITY / SLICK_MODEL_PREEMPTIONS /
/// SLICK_MODEL_MAX_SCHEDULES past them.
inline long EnvKnob(const char* name, long fallback) {
  if (const char* env = std::getenv(name)) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0') return v;
  }
  return fallback;
}

/// One cooperative thread of a modeled world: a step machine over shared
/// state. Step() is called only while Enabled().
class VirtualThread {
 public:
  virtual ~VirtualThread() = default;

  /// Executes the thread's next scheduler-visible action.
  virtual void Step() = 0;

  /// Finished — no further steps.
  virtual bool Done() const = 0;

  /// Parked on a wait predicate that does not currently hold. A parked
  /// thread is disabled until shared state flips the predicate.
  virtual bool Parked() const = 0;

  bool Enabled() const { return !Done() && !Parked(); }
};

/// A freshly constructed world per schedule: threads plus invariant hooks.
struct World {
  std::vector<VirtualThread*> threads;  // borrowed; factory owns them
  /// Invoked after every step; fail via `fail(message)`.
  std::function<void(const std::function<void(const std::string&)>& fail)>
      check_step;
  /// Invoked once all threads are Done.
  std::function<void(const std::function<void(const std::string&)>& fail)>
      check_final;
};

struct ExploreResult {
  uint64_t schedules = 0;       ///< terminal schedules fully executed
  uint64_t steps = 0;           ///< total steps across all schedules
  uint64_t max_depth = 0;       ///< longest schedule seen
  bool exhausted = false;       ///< DFS completed within max_schedules
  bool failed = false;
  std::string failure;          ///< first divergence + its schedule
};

struct ExploreOptions {
  /// Voluntary context switches allowed per schedule; -1 = unbounded.
  int preemption_bound = 4;
  /// Hard cap on explored schedules (runaway guard). Exceeding it clears
  /// `exhausted` — the caller decides whether that is a failure.
  uint64_t max_schedules = 2'000'000;
  /// Hard cap on steps within one schedule; tripping it means a thread
  /// loops without the scheduler's help (a livelock bug in the model).
  uint64_t max_steps_per_schedule = 10'000;
};

/// Exhaustively explores every interleaving (subject to the preemption
/// bound) of the worlds produced by `factory`. The factory must be
/// deterministic: replaying a choice prefix must reproduce identical
/// enabled sets, which is what makes stateless backtracking sound.
class ScheduleExplorer {
 public:
  explicit ScheduleExplorer(ExploreOptions opts) : opts_(opts) {}

  template <typename WorldFactory>
  ExploreResult Explore(const WorldFactory& factory) {
    ExploreResult result;
    // chosen_[d] = index into the enabled set at decision depth d;
    // width_[d] = how many were enabled there (for backtracking).
    std::vector<std::size_t> chosen;
    std::vector<std::size_t> width;
    for (;;) {
      if (result.schedules >= opts_.max_schedules) {
        return result;  // cap hit: not exhausted
      }
      auto owned = factory();  // holds threads + shared state alive
      World& world = owned->world;
      width.resize(chosen.size());
      std::vector<int> trace;
      int prev = -1;
      int preemptions = 0;
      std::size_t depth = 0;
      auto fail = [&](const std::string& msg) {
        if (result.failed) return;
        result.failed = true;
        result.failure = msg + "\n  schedule: " + FormatTrace(trace);
      };
      for (;;) {
        if (trace.size() > opts_.max_steps_per_schedule) {
          fail("schedule exceeded max_steps_per_schedule (model livelock)");
          return result;
        }
        std::vector<int> enabled = EnabledSet(world, prev, preemptions);
        if (enabled.empty()) {
          if (!AllDone(world)) {
            fail("deadlock: no enabled thread but work remains "
                 "(lost wakeup)");
            return result;
          }
          break;  // terminal
        }
        if (depth == chosen.size()) {
          chosen.push_back(0);
          width.push_back(enabled.size());
        } else {
          width[depth] = enabled.size();
        }
        const int t = enabled[chosen[depth]];
        if (prev >= 0 && t != prev &&
            world.threads[static_cast<std::size_t>(prev)]->Enabled()) {
          ++preemptions;  // switched away from a still-enabled thread
        }
        world.threads[static_cast<std::size_t>(t)]->Step();
        trace.push_back(t);
        ++result.steps;
        ++depth;
        if (world.check_step) {
          world.check_step(fail);
          if (result.failed) return result;
        }
        prev = t;
      }
      if (world.check_final) {
        world.check_final(fail);
        if (result.failed) return result;
      }
      ++result.schedules;
      if (depth > result.max_depth) result.max_depth = depth;
      // Backtrack to the deepest decision with an untried alternative.
      while (!chosen.empty() && chosen.back() + 1 >= width.back()) {
        chosen.pop_back();
        width.pop_back();
      }
      if (chosen.empty()) {
        result.exhausted = true;
        return result;
      }
      ++chosen.back();
    }
  }

 private:
  static bool AllDone(const World& world) {
    for (const VirtualThread* t : world.threads) {
      if (!t->Done()) return false;
    }
    return true;
  }

  std::vector<int> EnabledSet(const World& world, int prev,
                              int preemptions) const {
    // With the preemption budget spent, the running thread keeps the
    // processor while it stays enabled (the CHESS pruning rule).
    if (opts_.preemption_bound >= 0 && preemptions >= opts_.preemption_bound &&
        prev >= 0 && world.threads[static_cast<std::size_t>(prev)]->Enabled()) {
      return {prev};
    }
    std::vector<int> enabled;
    for (std::size_t i = 0; i < world.threads.size(); ++i) {
      if (world.threads[i]->Enabled()) enabled.push_back(static_cast<int>(i));
    }
    return enabled;
  }

  static std::string FormatTrace(const std::vector<int>& trace) {
    std::string s;
    s.reserve(trace.size() * 2);
    for (int t : trace) {
      s += static_cast<char>('0' + t);
      s += ' ';
    }
    return s;
  }

  ExploreOptions opts_;
};

}  // namespace slick::model
