// Deterministic model-checking of SpscRing (tests/model/, DESIGN.md §9):
// exhaustive bounded-preemption exploration of producer/consumer/close
// interleavings against a sequential FIFO oracle. The step machines below
// mirror push_n/pop_n line-for-line — each try-op, eventcount snapshot and
// wait-path recheck is one scheduler-visible step, and parking follows the
// exact snapshot/recheck/wait protocol of WaitForData/WaitForSpace (via
// the ring's *_event_word() introspection hooks).
//
// Checked on EVERY explored schedule:
//   * FIFO + no double-consume + no reorder: the popped sequence is
//     exactly 0,1,2,... (a prefix of the accepted pushes, in order);
//   * conservation: accepted == popped + still-in-ring, and at
//     termination the ring is drained (popped == accepted);
//   * no lost wakeup: a parked thread whose wake the protocol misses
//     surfaces as a deadlock (explorer reports no enabled thread).
//
// Budget knobs (PR gate defaults in brackets; the nightly CI job raises
// them): SLICK_MODEL_OPS [3] elements per producer, SLICK_MODEL_CAPACITY
// [2] min ring capacity, SLICK_MODEL_PREEMPTIONS [4] bound (-1 =
// unbounded), SLICK_MODEL_MAX_SCHEDULES [2M] runaway cap.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "model/virtual_scheduler.h"
#include "runtime/spsc_ring.h"

namespace slick::model {
namespace {

using runtime::SpscRing;

struct RingWorld;  // forward: shared state all three threads touch

/// Producer: blocking-push values 0..n-1 (mirrors SpscRing::push_n with a
/// batch of one), then optionally close. States map 1:1 onto the code
/// under test; kSnapshotEvent/kRecheck/park replicate WaitForSpace.
class ProducerThread : public VirtualThread {
 public:
  ProducerThread(RingWorld* w, int n, bool close_when_done)
      : w_(w), n_(n), close_when_done_(close_when_done) {}

  void Step() override;
  bool Done() const override { return state_ == State::kDone; }
  bool Parked() const override;

  int accepted() const { return accepted_; }

 private:
  enum class State {
    kTryPush,
    kCheckClosed,    // push_n: `if (closed_) break;`
    kSnapshotEvent,  // WaitForSpace: e = head_event_
    kRecheck,        // WaitForSpace: re-check space/closed before parking
    kParked,         // head_event_.wait(e) — value-based wake
    kClose,
    kDone,
  };
  RingWorld* w_;
  const int n_;
  const bool close_when_done_;
  State state_ = State::kTryPush;
  int next_ = 0;
  int accepted_ = 0;
  uint32_t event_snapshot_ = 0;
};

/// Consumer: mirrors the ShardWorker drain loop's use of pop_n — pop
/// batches until the ring is closed *and* drained. kSnapshotEvent /
/// kRecheck / park replicate WaitForData; kFinalPop is pop_n's
/// post-close re-poll ("elements published before close() must drain").
class ConsumerThread : public VirtualThread {
 public:
  ConsumerThread(RingWorld* w, std::size_t batch) : w_(w), batch_(batch) {}

  void Step() override;
  bool Done() const override { return state_ == State::kDone; }
  bool Parked() const override;

 private:
  enum class State {
    kTryPop,
    kCheckClosed,
    kFinalPop,
    kSnapshotEvent,  // WaitForData: e = tail_event_
    kRecheck,
    kParked,  // tail_event_.wait(e)
    kDone,
  };
  RingWorld* w_;
  const std::size_t batch_;
  State state_ = State::kTryPop;
  uint32_t event_snapshot_ = 0;
};

/// Closer: one-step close() racing both endpoints.
class CloserThread : public VirtualThread {
 public:
  explicit CloserThread(RingWorld* w) : w_(w) {}
  void Step() override;
  bool Done() const override { return done_; }
  bool Parked() const override { return false; }

 private:
  RingWorld* w_;
  bool done_ = false;
};

struct RingWorld {
  explicit RingWorld(std::size_t min_capacity) : ring(min_capacity) {}

  SpscRing<int> ring;
  std::vector<int> popped;  // FIFO oracle: must read 0,1,2,...
  int accepted = 0;
};

bool ProducerThread::Parked() const {
  return state_ == State::kParked &&
         w_->ring.head_event_word() == event_snapshot_;
}

void ProducerThread::Step() {
  switch (state_) {
    case State::kTryPush: {
      const int v = next_;
      if (w_->ring.try_push(v)) {
        ++accepted_;
        ++w_->accepted;
        ++next_;
        if (next_ == n_) {
          state_ = close_when_done_ ? State::kClose : State::kDone;
        }
      } else {
        state_ = State::kCheckClosed;
      }
      return;
    }
    case State::kCheckClosed:
      // push_n gives up on a closed ring (remaining elements rejected).
      state_ = w_->ring.closed() ? State::kDone : State::kSnapshotEvent;
      return;
    case State::kSnapshotEvent:
      event_snapshot_ = w_->ring.head_event_word();
      state_ = State::kRecheck;
      return;
    case State::kRecheck:
      // WaitForSpace: space freed or closed → retry; else park on the
      // event word (wake = word moved past the snapshot).
      if (w_->ring.size() < w_->ring.capacity() || w_->ring.closed()) {
        state_ = State::kTryPush;
      } else {
        state_ = State::kParked;
      }
      return;
    case State::kParked:
      // Scheduled again ⇒ the wake predicate held: wait() returned.
      state_ = State::kTryPush;
      return;
    case State::kClose:
      w_->ring.close();
      state_ = State::kDone;
      return;
    case State::kDone:
      return;
  }
}

bool ConsumerThread::Parked() const {
  return state_ == State::kParked &&
         w_->ring.tail_event_word() == event_snapshot_;
}

void ConsumerThread::Step() {
  std::vector<int> buf(batch_);
  switch (state_) {
    case State::kTryPop: {
      const std::size_t k = w_->ring.try_pop_n(buf.data(), batch_);
      if (k > 0) {
        w_->popped.insert(w_->popped.end(), buf.begin(),
                          buf.begin() + static_cast<std::ptrdiff_t>(k));
        // pop_n returned > 0: the worker loop calls pop_n again.
      } else {
        state_ = State::kCheckClosed;
      }
      return;
    }
    case State::kCheckClosed:
      state_ = w_->ring.closed() ? State::kFinalPop : State::kSnapshotEvent;
      return;
    case State::kFinalPop: {
      // pop_n: `return try_pop_n(...)` after observing closed — 0 is the
      // shutdown signal, anything else goes back to the worker loop.
      const std::size_t k = w_->ring.try_pop_n(buf.data(), batch_);
      if (k > 0) {
        w_->popped.insert(w_->popped.end(), buf.begin(),
                          buf.begin() + static_cast<std::ptrdiff_t>(k));
        state_ = State::kTryPop;
      } else {
        state_ = State::kDone;
      }
      return;
    }
    case State::kSnapshotEvent:
      event_snapshot_ = w_->ring.tail_event_word();
      state_ = State::kRecheck;
      return;
    case State::kRecheck:
      // WaitForData: data arrived or closed → retry; else park.
      if (!w_->ring.empty() || w_->ring.closed()) {
        state_ = State::kTryPop;
      } else {
        state_ = State::kParked;
      }
      return;
    case State::kParked:
      state_ = State::kTryPop;
      return;
    case State::kDone:
      return;
  }
}

void CloserThread::Step() {
  w_->ring.close();
  done_ = true;
}

// ---------------------------------------------------------------------------
// Scenario factories
// ---------------------------------------------------------------------------

struct OwnedWorld {
  std::unique_ptr<RingWorld> state;
  std::vector<std::unique_ptr<VirtualThread>> threads;
  World world;
};

/// Wires the common FIFO/conservation oracles: popped must always read
/// 0,1,2,... and never outrun the accepted count; at termination the ring
/// must be drained and every accepted element popped exactly once.
void WireOracles(OwnedWorld* ow, bool expect_full_drain) {
  RingWorld* s = ow->state.get();
  ow->world.check_step = [s](const auto& fail) {
    if (s->popped.size() > static_cast<std::size_t>(s->accepted)) {
      fail("double-consume: popped more than accepted");
      return;
    }
    for (std::size_t i = 0; i < s->popped.size(); ++i) {
      if (s->popped[i] != static_cast<int>(i)) {
        fail("FIFO violation at index " + std::to_string(i) + ": got " +
             std::to_string(s->popped[i]));
        return;
      }
    }
    const std::size_t in_ring = s->ring.size();
    if (s->popped.size() + in_ring != static_cast<std::size_t>(s->accepted)) {
      fail("conservation violated mid-run: accepted=" +
           std::to_string(s->accepted) + " popped=" +
           std::to_string(s->popped.size()) + " in_ring=" +
           std::to_string(in_ring));
    }
  };
  ow->world.check_final = [s, expect_full_drain](const auto& fail) {
    if (!expect_full_drain) {
      // try-op scenario: the consumer may stop early; conservation only.
      if (s->popped.size() + s->ring.size() !=
          static_cast<std::size_t>(s->accepted)) {
        fail("conservation violated at termination");
      }
      return;
    }
    if (s->popped.size() != static_cast<std::size_t>(s->accepted) ||
        !s->ring.empty()) {
      fail("lost elements at termination: accepted=" +
           std::to_string(s->accepted) + " popped=" +
           std::to_string(s->popped.size()) + " in_ring=" +
           std::to_string(s->ring.size()));
    }
  };
  for (auto& t : ow->threads) ow->world.threads.push_back(t.get());
}

struct ModelConfig {
  int ops;
  std::size_t capacity;
  std::size_t batch;
  ExploreOptions explore;
};

ModelConfig ConfigFromEnv() {
  ModelConfig cfg;
  cfg.ops = static_cast<int>(EnvKnob("SLICK_MODEL_OPS", 3));
  cfg.capacity =
      static_cast<std::size_t>(EnvKnob("SLICK_MODEL_CAPACITY", 2));
  cfg.batch = 2;
  cfg.explore.preemption_bound =
      static_cast<int>(EnvKnob("SLICK_MODEL_PREEMPTIONS", 4));
  cfg.explore.max_schedules = static_cast<uint64_t>(
      EnvKnob("SLICK_MODEL_MAX_SCHEDULES", 2'000'000));
  return cfg;
}

void ReportAndExpectExhausted(const ExploreResult& r, const char* what) {
  EXPECT_FALSE(r.failed) << what << ": " << r.failure;
  EXPECT_TRUE(r.exhausted)
      << what << ": bounded schedule space not exhausted within "
      << r.schedules << " schedules — raise SLICK_MODEL_MAX_SCHEDULES";
  EXPECT_GT(r.schedules, 0u);
  std::printf("[model] %-28s schedules=%llu steps=%llu max_depth=%llu\n",
              what, static_cast<unsigned long long>(r.schedules),
              static_cast<unsigned long long>(r.steps),
              static_cast<unsigned long long>(r.max_depth));
}

// ---------------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------------

/// Producer blocking-pushes N then closes; consumer drains via the full
/// pop_n protocol. The steady-state shape of the sharded runtime.
TEST(SpscRingModel, ProducerConsumerClose) {
  const ModelConfig cfg = ConfigFromEnv();
  ScheduleExplorer explorer(cfg.explore);
  const ExploreResult r = explorer.Explore([&] {
    auto ow = std::make_unique<OwnedWorld>();
    ow->state = std::make_unique<RingWorld>(cfg.capacity);
    ow->threads.push_back(std::make_unique<ProducerThread>(
        ow->state.get(), cfg.ops, /*close_when_done=*/true));
    ow->threads.push_back(
        std::make_unique<ConsumerThread>(ow->state.get(), cfg.batch));
    WireOracles(ow.get(), /*expect_full_drain=*/true);
    return ow;
  });
  ReportAndExpectExhausted(r, "ProducerConsumerClose");
}

/// A third thread calls close() at every possible point while the
/// producer is still pushing — the shutdown race. Elements accepted
/// before the close lands must still drain; pushes after it must be
/// rejected, never stranded.
TEST(SpscRingModel, ConcurrentCloseRace) {
  const ModelConfig cfg = ConfigFromEnv();
  ScheduleExplorer explorer(cfg.explore);
  const ExploreResult r = explorer.Explore([&] {
    auto ow = std::make_unique<OwnedWorld>();
    ow->state = std::make_unique<RingWorld>(cfg.capacity);
    ow->threads.push_back(std::make_unique<ProducerThread>(
        ow->state.get(), cfg.ops, /*close_when_done=*/false));
    ow->threads.push_back(
        std::make_unique<ConsumerThread>(ow->state.get(), cfg.batch));
    ow->threads.push_back(std::make_unique<CloserThread>(ow->state.get()));
    WireOracles(ow.get(), /*expect_full_drain=*/true);
    return ow;
  });
  ReportAndExpectExhausted(r, "ConcurrentCloseRace");
}

/// Capacity sweep up to the acceptance bound (≤ 4): the wrap-around and
/// full/empty boundary cases shift with capacity, so each is its own
/// exhaustive search.
TEST(SpscRingModel, CapacitySweep) {
  ModelConfig cfg = ConfigFromEnv();
  for (std::size_t cap : {std::size_t{2}, std::size_t{4}}) {
    ScheduleExplorer explorer(cfg.explore);
    const ExploreResult r = explorer.Explore([&] {
      auto ow = std::make_unique<OwnedWorld>();
      ow->state = std::make_unique<RingWorld>(cap);
      ow->threads.push_back(std::make_unique<ProducerThread>(
          ow->state.get(), cfg.ops, /*close_when_done=*/true));
      ow->threads.push_back(
          std::make_unique<ConsumerThread>(ow->state.get(), cfg.batch));
      WireOracles(ow.get(), /*expect_full_drain=*/true);
      return ow;
    });
    ReportAndExpectExhausted(
        r, ("CapacitySweep/cap" + std::to_string(cap)).c_str());
  }
}

// ---------------------------------------------------------------------------
// Claim-holding consumer (PR 5): the supervised worker defers ReleasePop
// until a checkpoint covers the claimed slots, so claims outlive batches
// and may still be unreleased when the producer closes. The consumer below
// drains via TryClaimPop with releases batched behind a threshold — the
// regression this hunts is a close() landing while a claimed span is held:
// the remainder must still drain exactly once (no re-handout of the held
// span, no stranded suffix).
// ---------------------------------------------------------------------------

/// Consumer draining via claim-range primitives with deferred releases
/// (mirrors ShardWorker's supervised loop shape, minus the aggregator).
class ClaimingConsumerThread : public VirtualThread {
 public:
  ClaimingConsumerThread(RingWorld* w, std::size_t batch,
                         std::size_t release_threshold)
      : w_(w), batch_(batch), release_threshold_(release_threshold) {}

  void Step() override {
    switch (state_) {
      case State::kClaim:
      case State::kFinalClaim: {
        const bool final_pass = state_ == State::kFinalClaim;
        std::size_t n = 0;
        int* span = w_->ring.TryClaimPop(batch_, &n);
        if (span != nullptr) {
          // Observing the span IS the consume: a double-handout of held
          // slots shows up as a FIFO/double-consume oracle failure.
          w_->popped.insert(w_->popped.end(), span, span + n);
          pending_ += n;
          state_ = State::kMaybeRelease;
        } else {
          state_ = final_pass ? State::kFinalRelease : State::kCheckClosed;
        }
        return;
      }
      case State::kMaybeRelease:
        // Deferred-release model: slots go back only once a "checkpoint"
        // (threshold) covers them — claims outlive batches meanwhile.
        if (pending_ >= release_threshold_) {
          w_->ring.ReleasePop(pending_);
          pending_ = 0;
        }
        state_ = State::kClaim;
        return;
      case State::kCheckClosed:
        state_ = w_->ring.closed() ? State::kFinalClaim : State::kSnapshotEvent;
        return;
      case State::kSnapshotEvent:
        event_snapshot_ = w_->ring.tail_event_word();
        state_ = State::kRecheck;
        return;
      case State::kRecheck:
        // WaitForData under deferred releases parks on "no unclaimed data"
        // (tail != claim), not occupancy — held claims keep size() > 0
        // forever, which would otherwise spin or park on a stale predicate.
        if (w_->ring.unconsumed() != 0 || w_->ring.closed()) {
          state_ = State::kClaim;
        } else {
          state_ = State::kParked;
        }
        return;
      case State::kParked:
        state_ = State::kClaim;
        return;
      case State::kFinalRelease:
        if (pending_ > 0) {
          w_->ring.ReleasePop(pending_);
          pending_ = 0;
        }
        state_ = State::kDone;
        return;
      case State::kDone:
        return;
    }
  }
  bool Done() const override { return state_ == State::kDone; }
  bool Parked() const override {
    return state_ == State::kParked &&
           w_->ring.tail_event_word() == event_snapshot_;
  }

 private:
  enum class State {
    kClaim,
    kMaybeRelease,
    kCheckClosed,
    kSnapshotEvent,
    kRecheck,
    kParked,
    kFinalClaim,
    kFinalRelease,
    kDone,
  };
  RingWorld* w_;
  const std::size_t batch_;
  const std::size_t release_threshold_;
  State state_ = State::kClaim;
  std::size_t pending_ = 0;
  uint32_t event_snapshot_ = 0;
};

/// Oracles for the claiming consumer: conservation is stated against the
/// claim cursor (popped + unconsumed == accepted) because held claims are
/// both "popped" (observed) and still occupying ring slots; at termination
/// everything must also be *released* (head caught up with claim).
void WireClaimOracles(OwnedWorld* ow) {
  RingWorld* s = ow->state.get();
  ow->world.check_step = [s](const auto& fail) {
    if (s->popped.size() > static_cast<std::size_t>(s->accepted)) {
      fail("double-consume: claimed more than accepted");
      return;
    }
    for (std::size_t i = 0; i < s->popped.size(); ++i) {
      if (s->popped[i] != static_cast<int>(i)) {
        fail("FIFO violation at index " + std::to_string(i) + ": got " +
             std::to_string(s->popped[i]));
        return;
      }
    }
    if (s->popped.size() + s->ring.unconsumed() !=
        static_cast<std::size_t>(s->accepted)) {
      fail("claim conservation violated mid-run: accepted=" +
           std::to_string(s->accepted) + " claimed=" +
           std::to_string(s->popped.size()) + " unconsumed=" +
           std::to_string(s->ring.unconsumed()));
    }
  };
  ow->world.check_final = [s](const auto& fail) {
    if (s->popped.size() != static_cast<std::size_t>(s->accepted) ||
        s->ring.unconsumed() != 0 || s->ring.unreleased() != 0 ||
        !s->ring.empty()) {
      fail("held claim stranded elements at close: accepted=" +
           std::to_string(s->accepted) + " claimed=" +
           std::to_string(s->popped.size()) + " unreleased=" +
           std::to_string(s->ring.unreleased()));
    }
  };
  for (auto& t : ow->threads) ow->world.threads.push_back(t.get());
}

/// Producer pushes N then closes while the consumer may be holding an
/// unreleased claimed span (threshold 3 with batch 2 guarantees held spans
/// at most steps). Every interleaving must drain exactly once.
TEST(SpscRingModel, CloseWithHeldClaimDrainsOnce) {
  const ModelConfig cfg = ConfigFromEnv();
  ScheduleExplorer explorer(cfg.explore);
  const ExploreResult r = explorer.Explore([&] {
    auto ow = std::make_unique<OwnedWorld>();
    // Capacity 4: roomy enough that close can land mid-hold, small enough
    // to keep the space exhaustive.
    ow->state = std::make_unique<RingWorld>(4);
    ow->threads.push_back(std::make_unique<ProducerThread>(
        ow->state.get(), cfg.ops, /*close_when_done=*/true));
    ow->threads.push_back(std::make_unique<ClaimingConsumerThread>(
        ow->state.get(), /*batch=*/2, /*release_threshold=*/3));
    WireClaimOracles(ow.get());
    return ow;
  });
  ReportAndExpectExhausted(r, "CloseWithHeldClaimDrainsOnce");
}

// ---------------------------------------------------------------------------
// Explorer self-tests: prove the checker can actually fail.
// ---------------------------------------------------------------------------

/// Two independent single-step threads → exactly C(2,1) = 2 schedules;
/// three steps split 2+1 → C(3,1) = 3. Pins the DFS enumeration itself.
class NoopThread : public VirtualThread {
 public:
  explicit NoopThread(int steps) : remaining_(steps) {}
  void Step() override { --remaining_; }
  bool Done() const override { return remaining_ == 0; }
  bool Parked() const override { return false; }

 private:
  int remaining_;
};

struct NoopWorld {
  std::vector<std::unique_ptr<VirtualThread>> threads;
  World world;
};

TEST(ScheduleExplorerSelfTest, EnumeratesAllInterleavings) {
  ExploreOptions opts;
  opts.preemption_bound = -1;  // unbounded: the full C(m+n, m) space
  ScheduleExplorer explorer(opts);
  const ExploreResult r = explorer.Explore([] {
    auto ow = std::make_unique<NoopWorld>();
    ow->threads.push_back(std::make_unique<NoopThread>(2));
    ow->threads.push_back(std::make_unique<NoopThread>(2));
    for (auto& t : ow->threads) ow->world.threads.push_back(t.get());
    return ow;
  });
  EXPECT_FALSE(r.failed) << r.failure;
  EXPECT_TRUE(r.exhausted);
  EXPECT_EQ(r.schedules, 6u);  // C(4, 2)
}

/// A waiter parked on an event word nobody ever bumps: the explorer must
/// report the lost wakeup as a deadlock on every schedule that parks.
class BrokenWaiter : public VirtualThread {
 public:
  void Step() override { parked_ = true; }  // parks; nobody will wake it
  bool Done() const override { return false; }
  bool Parked() const override { return parked_; }

 private:
  bool parked_ = false;
};

TEST(ScheduleExplorerSelfTest, DetectsLostWakeupAsDeadlock) {
  ExploreOptions opts;
  ScheduleExplorer explorer(opts);
  const ExploreResult r = explorer.Explore([] {
    auto ow = std::make_unique<NoopWorld>();
    ow->threads.push_back(std::make_unique<BrokenWaiter>());
    ow->threads.push_back(std::make_unique<NoopThread>(1));
    for (auto& t : ow->threads) ow->world.threads.push_back(t.get());
    return ow;
  });
  EXPECT_TRUE(r.failed);
  EXPECT_NE(r.failure.find("deadlock"), std::string::npos) << r.failure;
}

/// The preemption bound prunes: the same 2×2 world explored with bound 0
/// admits only the two run-to-completion schedules.
TEST(ScheduleExplorerSelfTest, PreemptionBoundPrunes) {
  ExploreOptions opts;
  opts.preemption_bound = 0;
  ScheduleExplorer explorer(opts);
  const ExploreResult r = explorer.Explore([] {
    auto ow = std::make_unique<NoopWorld>();
    ow->threads.push_back(std::make_unique<NoopThread>(2));
    ow->threads.push_back(std::make_unique<NoopThread>(2));
    for (auto& t : ow->threads) ow->world.threads.push_back(t.get());
    return ow;
  });
  EXPECT_FALSE(r.failed) << r.failure;
  EXPECT_TRUE(r.exhausted);
  EXPECT_EQ(r.schedules, 2u);  // AABB and BBAA only
}

}  // namespace
}  // namespace slick::model
