// Sharing-optimizer tests (§2.3's closing point: maximum sharing is not
// always beneficial): the greedy grouper must coalesce compatible ACQs and
// keep composite-exploding combinations apart, never modeling worse than
// either extreme strategy.

#include <vector>

#include <gtest/gtest.h>

#include "plan/optimizer.h"

namespace slick::plan {
namespace {

TEST(OptimizerTest, IdenticalSlidesMergeIntoOneGroup) {
  const std::vector<QuerySpec> queries = {{12, 4}, {24, 4}, {48, 4}};
  const Grouping g = OptimizeGrouping(queries, Pat::kPairs);
  EXPECT_EQ(g.groups.size(), 1u);
  EXPECT_DOUBLE_EQ(g.cost_per_tuple, MaxSharingCost(queries, Pat::kPairs));
  EXPECT_LT(g.cost_per_tuple, NoSharingCost(queries, Pat::kPairs));
}

TEST(OptimizerTest, HarmonicSlidesMerge) {
  const std::vector<QuerySpec> queries = {{64, 2}, {64, 4}, {64, 8}};
  const Grouping g = OptimizeGrouping(queries, Pat::kPairs);
  EXPECT_EQ(g.groups.size(), 1u);
}

TEST(OptimizerTest, CoprimeSlidesStayApart) {
  // Merging slides 7 and 11 makes a 77-tuple composite with per-position
  // range variation — far worse than two lean plans.
  const std::vector<QuerySpec> queries = {{10, 7}, {10, 11}};
  const Grouping g = OptimizeGrouping(queries, Pat::kPairs);
  EXPECT_EQ(g.groups.size(), 2u);
  EXPECT_LT(g.cost_per_tuple, MaxSharingCost(queries, Pat::kPairs));
  EXPECT_DOUBLE_EQ(g.cost_per_tuple, NoSharingCost(queries, Pat::kPairs));
}

TEST(OptimizerTest, MixedWorkloadPartitionsSensibly) {
  // Two harmonic families with mutually coprime bases: the optimizer
  // should find (roughly) the family structure.
  const std::vector<QuerySpec> queries = {
      {40, 4}, {80, 8}, {20, 4},    // family A: slides 4/8
      {63, 7}, {21, 7},             // family B: slide 7
  };
  const Grouping g = OptimizeGrouping(queries, Pat::kPairs);
  EXPECT_GE(g.groups.size(), 2u);
  EXPECT_LE(g.cost_per_tuple, MaxSharingCost(queries, Pat::kPairs) + 1e-9);
  EXPECT_LE(g.cost_per_tuple, NoSharingCost(queries, Pat::kPairs) + 1e-9);
  // Slide-7 queries must have ended up together.
  for (const auto& group : g.groups) {
    bool has7 = false, has48 = false;
    for (const QuerySpec& q : group) {
      (q.slide == 7 ? has7 : has48) = true;
    }
    EXPECT_FALSE(has7 && has48) << "coprime families merged";
  }
}

TEST(OptimizerTest, NeverWorseThanEitherExtreme) {
  const std::vector<std::vector<QuerySpec>> workloads = {
      {{8, 2}},
      {{8, 2}, {16, 2}},
      {{8, 2}, {9, 3}, {10, 5}},
      {{100, 8}, {100, 7}, {64, 8}, {49, 7}},
      {{5, 5}, {25, 5}, {7, 7}, {49, 7}, {11, 11}},
  };
  for (const auto& queries : workloads) {
    const Grouping g = OptimizeGrouping(queries, Pat::kPairs);
    EXPECT_LE(g.cost_per_tuple, MaxSharingCost(queries, Pat::kPairs) + 1e-9);
    EXPECT_LE(g.cost_per_tuple, NoSharingCost(queries, Pat::kPairs) + 1e-9);
    std::size_t total = 0;
    for (const auto& group : g.groups) total += group.size();
    EXPECT_EQ(total, queries.size()) << "queries lost or duplicated";
  }
}

TEST(OptimizerTest, SingleQueryIsTrivial) {
  const Grouping g = OptimizeGrouping({{32, 4}}, Pat::kPairs);
  EXPECT_EQ(g.groups.size(), 1u);
  EXPECT_DOUBLE_EQ(g.cost_per_tuple, NoSharingCost({{32, 4}}, Pat::kPairs));
}

TEST(OptimizerTest, EdgeOverheadSteersDecisions) {
  // With free edges, sharing is (weakly) preferred even across coprime
  // slides only if it reduces range count — here it does not, so the
  // groups stay apart regardless; with huge edge overhead, definitely.
  const std::vector<QuerySpec> queries = {{10, 7}, {10, 11}};
  for (double overhead : {0.0, 4.0, 100.0}) {
    const Grouping g =
        OptimizeGrouping(queries, Pat::kPairs, PlanCostModel{overhead});
    EXPECT_LE(g.cost_per_tuple,
              MaxSharingCost(queries, Pat::kPairs, PlanCostModel{overhead}) +
                  1e-9);
  }
}

}  // namespace
}  // namespace slick::plan
