// Replays the paper's worked examples step by step:
//   * Example 1 / Fig 7  — shared plan for two Max ACQs (checked in
//     plan_test.cc; the end-to-end answers are checked here)
//   * Example 2 / Fig 8  — SlickDeque (Inv) vs Naive on Sum, including the
//     paper's operation counts (Naive 48, SlickDeque 32)
//   * Example 3 / Fig 9  — SlickDeque (Non-Inv) vs Naive on Max, including
//     the operation counts (Naive 48, SlickDeque 11)
// The input stream is the paper's: 6, 5, 0, 1, 3, 4, 2, 7.

#include <array>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/slick_deque_inv.h"
#include "core/slick_deque_noninv.h"
#include "engine/acq_engine.h"
#include "ops/arith.h"
#include "ops/counting.h"
#include "ops/minmax.h"
#include "window/naive.h"

namespace slick {
namespace {

constexpr std::array<int64_t, 8> kStream = {6, 5, 0, 1, 3, 4, 2, 7};

// ---------------------------------------------------------------------------
// Example 2 (Fig 8): Q1 = Sum(range 3), Q2 = Sum(range 5), slide 1.
// ---------------------------------------------------------------------------

TEST(PaperExample2, SlickDequeInvAnswers) {
  // Expected per-step answers, from the figure's walkthrough.
  constexpr std::array<int64_t, 8> kQ1 = {6, 11, 11, 6, 4, 8, 9, 13};
  constexpr std::array<int64_t, 8> kQ2 = {6, 11, 11, 12, 15, 13, 10, 17};

  core::SlickDequeInv<ops::SumInt> agg(5, {3, 5});
  for (std::size_t step = 0; step < kStream.size(); ++step) {
    agg.slide(kStream[step]);
    EXPECT_EQ(agg.query(3), kQ1[step]) << "step " << step + 1;
    EXPECT_EQ(agg.query(5), kQ2[step]) << "step " << step + 1;
  }
}

TEST(PaperExample2, NaiveAnswersAgree) {
  window::NaiveWindow<ops::SumInt> naive(5);
  core::SlickDequeInv<ops::SumInt> slick(5, {3, 5});
  for (int64_t x : kStream) {
    naive.slide(x);
    slick.slide(x);
    EXPECT_EQ(naive.query(3), slick.query(3));
    EXPECT_EQ(naive.query(5), slick.query(5));
  }
}

TEST(PaperExample2, OperationCounts) {
  // "Naive had to execute a total of 48 Sum operations, while SlickDeque
  //  (Inv) executed a total of 32 operations (Sum and Subtract)."
  using CSum = ops::CountingOp<ops::SumInt>;

  ops::OpCounter::Reset();
  window::NaiveWindow<CSum> naive(5);
  for (int64_t x : kStream) {
    naive.slide(x);
    (void)naive.query(3);
    (void)naive.query(5);
  }
  EXPECT_EQ(ops::OpCounter::Total(), 48u);

  ops::OpCounter::Reset();
  core::SlickDequeInv<CSum> slick(5, {3, 5});
  for (int64_t x : kStream) {
    slick.slide(x);
    (void)slick.query(3);
    (void)slick.query(5);
  }
  EXPECT_EQ(ops::OpCounter::Total(), 32u);
  EXPECT_EQ(ops::OpCounter::combines, 16u);   // one ⊕ per query per slide
  EXPECT_EQ(ops::OpCounter::inverses, 16u);   // one ⊖ per query per slide
}

// ---------------------------------------------------------------------------
// Example 3 (Fig 9): Q1 = Max(range 3), Q2 = Max(range 5), slide 1.
// ---------------------------------------------------------------------------

TEST(PaperExample3, SlickDequeNonInvAnswers) {
  constexpr std::array<int64_t, 8> kQ1 = {6, 6, 6, 5, 3, 4, 4, 7};
  constexpr std::array<int64_t, 8> kQ2 = {6, 6, 6, 6, 6, 5, 4, 7};

  core::SlickDequeNonInv<ops::MaxInt> agg(5);
  for (std::size_t step = 0; step < kStream.size(); ++step) {
    agg.slide(kStream[step]);
    EXPECT_EQ(agg.query(3), kQ1[step]) << "step " << step + 1;
    EXPECT_EQ(agg.query(5), kQ2[step]) << "step " << step + 1;
  }
}

TEST(PaperExample3, DequeContentsFollowTheFigure) {
  core::SlickDequeNonInv<ops::MaxInt> agg(5);
  // Node counts per step, from Fig 9: [6] [6,5] [6,5,0] [6,5,1] [6,5,3]
  // [5,4] [4,2] [7].
  constexpr std::array<std::size_t, 8> kNodes = {1, 2, 3, 3, 3, 2, 2, 1};
  for (std::size_t step = 0; step < kStream.size(); ++step) {
    agg.slide(kStream[step]);
    EXPECT_EQ(agg.node_count(), kNodes[step]) << "step " << step + 1;
  }
}

TEST(PaperExample3, OperationCounts) {
  // "Naive had to execute 48 Max operations total, while SlickDeque
  //  (Non-Inv) executed 11."
  using CMax = ops::CountingOp<ops::MaxInt>;

  ops::OpCounter::Reset();
  window::NaiveWindow<CMax> naive(5);
  for (int64_t x : kStream) {
    naive.slide(x);
    (void)naive.query(3);
    (void)naive.query(5);
  }
  EXPECT_EQ(ops::OpCounter::Total(), 48u);

  ops::OpCounter::Reset();
  core::SlickDequeNonInv<CMax> slick(5);
  for (int64_t x : kStream) {
    slick.slide(x);
    (void)slick.query(3);  // answering costs zero aggregate operations
    (void)slick.query(5);
  }
  EXPECT_EQ(ops::OpCounter::Total(), 11u);
}

// ---------------------------------------------------------------------------
// Example 1 (Fig 7): shared Max ACQs end to end through the engine.
// ---------------------------------------------------------------------------

TEST(PaperExample1, SharedMaxQueriesThroughEngine) {
  // Q1 = Max(range 6, slide 2), Q2 = Max(range 8, slide 4) on one stream.
  engine::AcqEngine<core::SlickDequeNonInv<ops::MaxInt>> eng(
      {{6, 2}, {8, 4}}, plan::Pat::kPairs);

  std::vector<int64_t> stream = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8};
  std::vector<std::pair<uint32_t, int64_t>> answers;
  for (int64_t x : stream) {
    eng.Push(x, [&](uint32_t q, int64_t a) { answers.emplace_back(q, a); });
  }
  // Q1 answers at tuples 2,4,6,8,10,12 over the last 6; Q2 at 4,8,12 over
  // the last 8 (identity-padded during warm-up). Larger ranges report
  // first within a step, per the shared plan's descending order.
  auto max_last = [&](std::size_t end, std::size_t r) {
    int64_t m = INT64_MIN;
    for (std::size_t i = end - std::min(end, r); i < end; ++i) {
      m = std::max(m, stream[i]);
    }
    return m;
  };
  const std::vector<std::pair<uint32_t, int64_t>> expected = {
      {0, max_last(2, 6)},  {1, max_last(4, 8)}, {0, max_last(4, 6)},
      {0, max_last(6, 6)},  {1, max_last(8, 8)}, {0, max_last(8, 6)},
      {0, max_last(10, 6)}, {1, max_last(12, 8)},
      {0, max_last(12, 6)}};
  ASSERT_EQ(answers.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(answers[i], expected[i]) << "answer " << i;
  }
}

}  // namespace
}  // namespace slick
