// HistoryTree tests (§2.4's Temporal-DB substrate): arbitrary-segment
// queries against a brute-force history, growth across capacity doublings,
// order preservation, and the suffix-window equivalence with the sliding
// algorithms.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/slick_deque_inv.h"
#include "ops/arith.h"
#include "ops/string_ops.h"
#include "util/rng.h"
#include "window/history_tree.h"

namespace slick::window {
namespace {

TEST(HistoryTreeTest, SegmentsMatchBruteForce) {
  HistoryTree<ops::SumInt> tree(4);  // tiny: forces several growths
  std::vector<int64_t> history;
  util::SplitMix64 rng(1);
  for (int i = 0; i < 500; ++i) {
    const int64_t v = static_cast<int64_t>(rng.NextBounded(1000));
    tree.Append(v);
    history.push_back(v);
    // A few random segments per append.
    for (int probe = 0; probe < 3; ++probe) {
      const uint64_t lo = rng.NextBounded(history.size());
      const uint64_t hi = lo + rng.NextBounded(history.size() - lo);
      int64_t expect = 0;
      for (uint64_t k = lo; k <= hi; ++k) {
        expect += history[static_cast<std::size_t>(k)];
      }
      ASSERT_EQ(tree.QuerySegment(lo, hi), expect)
          << "i=" << i << " [" << lo << "," << hi << "]";
    }
  }
}

TEST(HistoryTreeTest, PreservesStreamOrder) {
  HistoryTree<ops::Concat> tree(2);
  const std::string word = "slickdeque";
  for (char c : word) tree.Append(std::string(1, c));
  EXPECT_EQ(tree.QuerySegment(0, word.size() - 1), word);
  EXPECT_EQ(tree.QuerySegment(5, 9), "deque");
  EXPECT_EQ(tree.QuerySegment(0, 4), "slick");
  EXPECT_EQ(tree.QuerySegment(3, 3), "c");
}

TEST(HistoryTreeTest, SuffixMatchesSlidingAggregator) {
  // §2.4's framing: a DSMS suffix window is the special segment
  // [s - W, s - 1]. The tree and SlickDeque (Inv) must agree on it.
  const std::size_t window = 64;
  HistoryTree<ops::SumInt> tree;
  core::SlickDequeInv<ops::SumInt> slick(window);
  util::SplitMix64 rng(2);
  for (int i = 0; i < 400; ++i) {
    const int64_t v = static_cast<int64_t>(rng.NextBounded(1000));
    tree.Append(v);
    slick.slide(v);
    if (static_cast<std::size_t>(i) + 1 >= window) {
      ASSERT_EQ(tree.QuerySuffix(window), slick.query());
    }
  }
}

TEST(HistoryTreeTest, MemoryGrowsWithHistoryNotWindow) {
  // The §2.4 trade-off: the temporal structure retains EVERYTHING.
  HistoryTree<ops::SumInt> tree(64);
  const std::size_t before = tree.memory_bytes();
  for (int64_t i = 0; i < 100000; ++i) tree.Append(i);
  EXPECT_GE(tree.memory_bytes(), 100000 * sizeof(int64_t));
  EXPECT_GT(tree.memory_bytes(), 100 * before);
}

TEST(HistoryTreeTest, BoundsChecked) {
  HistoryTree<ops::SumInt> tree;
  tree.Append(1);
  tree.Append(2);
  EXPECT_EQ(tree.QuerySegment(0, 1), 3);
  EXPECT_DEATH(tree.QuerySegment(1, 2), "out of history");
  EXPECT_DEATH(tree.QuerySegment(1, 0), "out of history");
  EXPECT_DEATH(tree.QuerySuffix(3), "out of history");
}

}  // namespace
}  // namespace slick::window
