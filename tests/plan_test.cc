#include <vector>

#include <gtest/gtest.h>

#include "plan/pat.h"
#include "plan/query_spec.h"
#include "plan/shared_plan.h"

namespace slick::plan {
namespace {

// --------------------------- Fragment edges (§2.1) ------------------------

TEST(PatTest, PanesUsesGcdPanes) {
  // range 6, slide 4 -> pane = gcd(6,4) = 2 -> edges every 2 tuples.
  EXPECT_EQ(FragmentEdges({6, 4}, Pat::kPanes),
            (std::vector<uint64_t>{2, 4}));
  // range % slide == 0 -> one pane per slide.
  EXPECT_EQ(FragmentEdges({8, 4}, Pat::kPanes), (std::vector<uint64_t>{4}));
  EXPECT_EQ(FragmentEdges({7, 3}, Pat::kPanes),
            (std::vector<uint64_t>{1, 2, 3}));
}

TEST(PatTest, PairsUsesTwoFragments) {
  // f2 = 6 % 4 = 2, f1 = 4 - 2 = 2 -> edges at 2 and 4.
  EXPECT_EQ(FragmentEdges({6, 4}, Pat::kPairs),
            (std::vector<uint64_t>{2, 4}));
  // f2 = 7 % 3 = 1, f1 = 2 -> edges at 2 and 3.
  EXPECT_EQ(FragmentEdges({7, 3}, Pat::kPairs),
            (std::vector<uint64_t>{2, 3}));
  // Divisible range: single fragment.
  EXPECT_EQ(FragmentEdges({8, 4}, Pat::kPairs), (std::vector<uint64_t>{4}));
}

TEST(PatTest, CuttyCutsOnlyAtWindowBegins) {
  EXPECT_EQ(FragmentEdges({7, 3}, Pat::kCutty), (std::vector<uint64_t>{3}));
  EXPECT_EQ(FragmentEdges({6, 4}, Pat::kCutty), (std::vector<uint64_t>{4}));
}

TEST(PatTest, PartialsPerWindowMatchesPaperHierarchy) {
  // The §2.1 progression: Pairs halves Panes; Cutty halves Pairs again.
  const QuerySpec q{100, 8};  // range 100, slide 8, f2 = 4
  const uint64_t panes = PartialsPerWindow(q, Pat::kPanes);
  const uint64_t pairs = PartialsPerWindow(q, Pat::kPairs);
  const uint64_t cutty = PartialsPerWindow(q, Pat::kCutty);
  EXPECT_EQ(panes, 25u);  // gcd(100,8) = 4 -> 100/4
  EXPECT_EQ(pairs, 25u);  // 12 slides * 2 + 1
  EXPECT_EQ(cutty, 13u);  // 100/8 + 1
  EXPECT_LE(pairs, panes);
  EXPECT_LT(cutty, pairs);

  const QuerySpec q2{100, 7};  // gcd = 1: Panes degenerates to per-tuple
  EXPECT_EQ(PartialsPerWindow(q2, Pat::kPanes), 100u);
  EXPECT_EQ(PartialsPerWindow(q2, Pat::kPairs), 29u);  // 14*2 + 1
  EXPECT_EQ(PartialsPerWindow(q2, Pat::kCutty), 15u);
}

TEST(PatTest, RangeSmallerThanSlide) {
  // range 3, slide 8: only the last 3 tuples of each slide matter.
  EXPECT_EQ(FragmentEdges({3, 8}, Pat::kPairs),
            (std::vector<uint64_t>{5, 8}));
  EXPECT_EQ(PartialsPerWindow({3, 8}, Pat::kPairs), 1u);
}

// --------------------------- Shared plans (§2.3) --------------------------

TEST(SharedPlanTest, PaperExampleOne) {
  // Example 1 / Fig 7: Q1 = Max(range 6, slide 2), Q2 = Max(range 8,
  // slide 4). Partials every 2 tuples; Q1 aggregates the last 3 partials,
  // Q2 the last 4.
  const SharedPlan plan =
      SharedPlan::Build({{6, 2}, {8, 4}}, Pat::kPairs);
  EXPECT_TRUE(plan.executable());
  EXPECT_EQ(plan.composite_slide(), 4u);
  ASSERT_EQ(plan.steps().size(), 2u);
  EXPECT_EQ(plan.steps()[0].partial_len, 2u);
  EXPECT_EQ(plan.steps()[1].partial_len, 2u);

  // Step 0 (offset 2): only Q1 reports, spanning 3 partials.
  ASSERT_EQ(plan.steps()[0].reports.size(), 1u);
  EXPECT_EQ(plan.steps()[0].reports[0].query, 0u);
  EXPECT_EQ(plan.steps()[0].reports[0].range_in_partials, 3u);

  // Step 1 (offset 4): both report; Q2 (4 partials) ordered before Q1 (3).
  ASSERT_EQ(plan.steps()[1].reports.size(), 2u);
  EXPECT_EQ(plan.steps()[1].reports[0].query, 1u);
  EXPECT_EQ(plan.steps()[1].reports[0].range_in_partials, 4u);
  EXPECT_EQ(plan.steps()[1].reports[1].query, 0u);
  EXPECT_EQ(plan.steps()[1].reports[1].range_in_partials, 3u);

  EXPECT_EQ(plan.window_partials(), 4u);
  EXPECT_EQ(plan.distinct_ranges(), (std::vector<uint64_t>{3, 4}));
}

TEST(SharedPlanTest, SingleQuerySlideOne) {
  // The evaluation's workload: slide 1, no partial aggregation.
  const SharedPlan plan = SharedPlan::Build({{1024, 1}}, Pat::kPairs);
  EXPECT_TRUE(plan.executable());
  EXPECT_EQ(plan.composite_slide(), 1u);
  ASSERT_EQ(plan.steps().size(), 1u);
  EXPECT_EQ(plan.steps()[0].partial_len, 1u);
  EXPECT_EQ(plan.window_partials(), 1024u);
  ASSERT_EQ(plan.steps()[0].reports.size(), 1u);
  EXPECT_EQ(plan.steps()[0].reports[0].range_in_partials, 1024u);
}

TEST(SharedPlanTest, MaxMultiQuerySlideOne) {
  // All ranges 1..n with slide 1 (the paper's max-multi-query environment).
  std::vector<QuerySpec> queries;
  for (uint64_t r = 1; r <= 8; ++r) queries.push_back({r, 1});
  const SharedPlan plan = SharedPlan::Build(queries, Pat::kPairs);
  EXPECT_TRUE(plan.executable());
  EXPECT_EQ(plan.composite_slide(), 1u);
  ASSERT_EQ(plan.steps().size(), 1u);
  EXPECT_EQ(plan.steps()[0].reports.size(), 8u);
  // Descending range order for the deque walk.
  for (std::size_t i = 0; i + 1 < 8; ++i) {
    EXPECT_GT(plan.steps()[0].reports[i].range_in_partials,
              plan.steps()[0].reports[i + 1].range_in_partials);
  }
  EXPECT_EQ(plan.window_partials(), 8u);
}

TEST(SharedPlanTest, HeterogeneousSlidesShareEdges) {
  // Slides 2 and 3 -> composite 6 with edges {2, 3, 4, 6}.
  const SharedPlan plan = SharedPlan::Build({{4, 2}, {6, 3}}, Pat::kPairs);
  EXPECT_TRUE(plan.executable());
  EXPECT_EQ(plan.composite_slide(), 6u);
  std::vector<uint64_t> lens;
  for (const PlanStep& s : plan.steps()) lens.push_back(s.partial_len);
  EXPECT_EQ(lens, (std::vector<uint64_t>{2, 1, 1, 2}));
  // More sharing than running both alone: 4 partials instead of 3 + 2.
  EXPECT_EQ(plan.partials_per_composite_slide(), 4u);
}

TEST(SharedPlanTest, RangeSpanningMultipleCompositeSlides) {
  // range 10, slide 2: the range wraps the composite slide 5 times.
  const SharedPlan plan = SharedPlan::Build({{10, 2}}, Pat::kPairs);
  EXPECT_TRUE(plan.executable());
  EXPECT_EQ(plan.composite_slide(), 2u);
  ASSERT_EQ(plan.steps().size(), 1u);
  EXPECT_EQ(plan.steps()[0].reports[0].range_in_partials, 5u);
}

TEST(SharedPlanTest, PairsFragmentRangesLandOnEdges) {
  // range 7, slide 3 (f1 = 2, f2 = 1): ranges must land on edges at every
  // report position, and span 5 partials (2 per covered slide + f2).
  const SharedPlan plan = SharedPlan::Build({{7, 3}}, Pat::kPairs);
  EXPECT_TRUE(plan.executable());
  EXPECT_EQ(plan.composite_slide(), 3u);
  ASSERT_EQ(plan.steps().size(), 2u);
  EXPECT_EQ(plan.steps()[0].partial_len, 2u);
  EXPECT_EQ(plan.steps()[1].partial_len, 1u);
  EXPECT_EQ(plan.steps()[1].reports[0].range_in_partials, 5u);
}

TEST(SharedPlanTest, CuttyCanBeNonExecutable) {
  // range 7, slide 3 under Cutty: the range starts mid-partial.
  const SharedPlan plan = SharedPlan::Build({{7, 3}}, Pat::kCutty);
  EXPECT_FALSE(plan.executable());
  // But divisible ranges stay executable.
  const SharedPlan ok = SharedPlan::Build({{6, 3}}, Pat::kCutty);
  EXPECT_TRUE(ok.executable());
  EXPECT_EQ(ok.window_partials(), 2u);
}

TEST(SharedPlanTest, SharedQueriesWithEqualRangesShareAnswers) {
  // Two queries with identical range but different slides: one distinct
  // range (they share one running answer in SlickDeque (Inv)).
  const SharedPlan plan = SharedPlan::Build({{12, 2}, {12, 4}}, Pat::kPairs);
  EXPECT_TRUE(plan.executable());
  EXPECT_EQ(plan.distinct_ranges().size(), 1u);
}

}  // namespace
}  // namespace slick::plan
