#include <deque>
#include <string>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "window/chunked_array_queue.h"

namespace slick::window {
namespace {

TEST(ChunkedArrayQueueTest, StartsEmpty) {
  ChunkedArrayQueue<int> q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.front_seq(), q.end_seq());
}

TEST(ChunkedArrayQueueTest, FifoOrder) {
  ChunkedArrayQueue<int> q(4);
  for (int i = 0; i < 10; ++i) q.push_back(i);
  EXPECT_EQ(q.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(q.front(), i);
    q.pop_front();
  }
  EXPECT_TRUE(q.empty());
}

TEST(ChunkedArrayQueueTest, SequenceAddressingIsStable) {
  ChunkedArrayQueue<int> q(4);
  for (int i = 0; i < 20; ++i) q.push_back(i * 10);
  const uint64_t seq5 = q.front_seq() + 5;
  EXPECT_EQ(q[seq5], 50);
  // Popping from the front must not disturb live sequence numbers.
  for (int i = 0; i < 5; ++i) q.pop_front();
  EXPECT_EQ(q[seq5], 50);
  EXPECT_EQ(q.front_seq(), 5u);
  EXPECT_EQ(q.front(), 50);
  EXPECT_EQ(q.back(), 190);
}

TEST(ChunkedArrayQueueTest, PopBack) {
  ChunkedArrayQueue<int> q(4);
  for (int i = 0; i < 9; ++i) q.push_back(i);
  q.pop_back();
  EXPECT_EQ(q.back(), 7);
  EXPECT_EQ(q.size(), 8u);
  while (!q.empty()) q.pop_back();
  EXPECT_TRUE(q.empty());
  // Reusable after draining from the back.
  q.push_back(42);
  EXPECT_EQ(q.front(), 42);
  EXPECT_EQ(q.back(), 42);
}

TEST(ChunkedArrayQueueTest, MixedEndsMatchStdDeque) {
  ChunkedArrayQueue<int> q(3);
  std::deque<int> ref;
  util::SplitMix64 rng(99);
  for (int step = 0; step < 20000; ++step) {
    const uint64_t action = rng.NextBounded(4);
    if (action == 0 || ref.empty()) {
      const int v = static_cast<int>(rng.NextBounded(1000));
      q.push_back(v);
      ref.push_back(v);
    } else if (action == 1) {
      q.pop_front();
      ref.pop_front();
    } else if (action == 2) {
      q.pop_back();
      ref.pop_back();
    } else {
      const uint64_t idx = rng.NextBounded(ref.size());
      ASSERT_EQ(q[q.front_seq() + idx], ref[idx]);
    }
    ASSERT_EQ(q.size(), ref.size());
    if (!ref.empty()) {
      ASSERT_EQ(q.front(), ref.front());
      ASSERT_EQ(q.back(), ref.back());
    }
  }
}

TEST(ChunkedArrayQueueTest, ChunkCountTracksContent) {
  ChunkedArrayQueue<int> q(8);
  EXPECT_EQ(q.chunk_count(), 0u);
  q.push_back(1);
  EXPECT_EQ(q.chunk_count(), 1u);
  for (int i = 0; i < 16; ++i) q.push_back(i);
  EXPECT_EQ(q.chunk_count(), 3u);  // 17 elements / 8 per chunk
  // Draining keeps at most one spare chunk around.
  while (!q.empty()) q.pop_front();
  EXPECT_LE(q.chunk_count(), 2u);
}

TEST(ChunkedArrayQueueTest, WorksWithNonTrivialTypes) {
  ChunkedArrayQueue<std::string> q(2);
  q.push_back("alpha");
  q.push_back("beta");
  q.push_back("gamma");
  EXPECT_EQ(q.front(), "alpha");
  q.pop_front();
  EXPECT_EQ(q.front(), "beta");
  EXPECT_EQ(q.back(), "gamma");
}

TEST(ChunkedArrayQueueTest, MemoryBytesGrowsWithChunks) {
  ChunkedArrayQueue<int64_t> q(16);
  const std::size_t empty_bytes = q.memory_bytes();
  for (int i = 0; i < 100; ++i) q.push_back(i);
  EXPECT_GT(q.memory_bytes(), empty_bytes);
  EXPECT_GE(q.memory_bytes(), 100 * sizeof(int64_t));
}

}  // namespace
}  // namespace slick::window
