// Property tests for the telemetry layer (telemetry/): histogram bucket
// geometry, merge algebra (associative + commutative), quantile agreement
// with the exact sorted-sample path within the documented bucket-relative
// error, count conservation under concurrent recording (the test the CI
// TSan job runs — names keep the "Telemetry" token for its filter), and
// the counter/gauge/JSON plumbing.

#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/counters.h"
#include "telemetry/histogram.h"
#include "telemetry/json.h"
#include "telemetry/snapshot.h"
#include "util/rng.h"
#include "util/stats.h"

namespace slick::telemetry {
namespace {

using Snapshot = LatencyHistogram::Snapshot;

// ---------------------------------------------------------------------
// Bucket geometry.
// ---------------------------------------------------------------------

TEST(TelemetryHistogramTest, BucketGeometryRoundTrips) {
  util::SplitMix64 rng(0xB0C);
  // Every value lies inside its bucket's [lower, upper] range, and bucket
  // width never exceeds the documented relative error.
  for (int trial = 0; trial < 20000; ++trial) {
    const int bits = 1 + static_cast<int>(rng.NextBounded(63));
    const uint64_t v = rng.NextU64() >> (64 - bits);
    const std::size_t i = LatencyHistogram::BucketIndex(v);
    ASSERT_LT(i, LatencyHistogram::kBucketCount);
    const uint64_t lo = LatencyHistogram::BucketLower(i);
    const uint64_t hi = LatencyHistogram::BucketUpper(i);
    ASSERT_LE(lo, v) << "v=" << v << " i=" << i;
    ASSERT_GE(hi, v) << "v=" << v << " i=" << i;
    if (lo > 0) {
      ASSERT_LE(static_cast<double>(hi - lo),
                LatencyHistogram::kRelativeError * static_cast<double>(lo) +
                    1e-9)
          << "bucket " << i << " too wide";
    }
  }
}

TEST(TelemetryHistogramTest, BucketIndexIsMonotone) {
  // Spot-check monotonicity across bucket boundaries at every octave.
  for (uint32_t shift = 0; shift < 63; ++shift) {
    const uint64_t v = uint64_t{1} << shift;
    EXPECT_LE(LatencyHistogram::BucketIndex(v - 1),
              LatencyHistogram::BucketIndex(v));
    EXPECT_LE(LatencyHistogram::BucketIndex(v),
              LatencyHistogram::BucketIndex(v + 1));
  }
  EXPECT_EQ(LatencyHistogram::BucketIndex(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(~uint64_t{0}),
            LatencyHistogram::kBucketCount - 1);
}

TEST(TelemetryHistogramTest, SmallValuesAreExact) {
  LatencyHistogram h;
  for (uint64_t v = 0; v < 2 * LatencyHistogram::kSubBuckets; ++v) {
    h.Record(v);
  }
  const Snapshot s = h.TakeSnapshot();
  for (uint64_t v = 0; v < 2 * LatencyHistogram::kSubBuckets; ++v) {
    EXPECT_EQ(s.counts[LatencyHistogram::BucketIndex(v)], 1u);
    EXPECT_DOUBLE_EQ(Snapshot::BucketValue(LatencyHistogram::BucketIndex(v)),
                     static_cast<double>(v));
  }
}

// ---------------------------------------------------------------------
// Merge algebra: associative and commutative.
// ---------------------------------------------------------------------

Snapshot RandomSnapshot(util::SplitMix64& rng, int samples) {
  LatencyHistogram h;
  for (int i = 0; i < samples; ++i) {
    h.Record(rng.NextU64() >> (rng.NextBounded(50) + 8));
  }
  return h.TakeSnapshot();
}

TEST(TelemetryHistogramTest, MergeIsCommutative) {
  util::SplitMix64 rng(0xC0FFEE);
  for (int trial = 0; trial < 20; ++trial) {
    const Snapshot a = RandomSnapshot(rng, 500);
    const Snapshot b = RandomSnapshot(rng, 300);
    Snapshot ab = a;
    ab.Merge(b);
    Snapshot ba = b;
    ba.Merge(a);
    EXPECT_EQ(ab.counts, ba.counts);
    EXPECT_EQ(ab.sum, ba.sum);
  }
}

TEST(TelemetryHistogramTest, MergeIsAssociative) {
  util::SplitMix64 rng(0xABCD);
  for (int trial = 0; trial < 20; ++trial) {
    const Snapshot a = RandomSnapshot(rng, 400);
    const Snapshot b = RandomSnapshot(rng, 200);
    const Snapshot c = RandomSnapshot(rng, 600);
    Snapshot ab_c = a;
    ab_c.Merge(b);
    ab_c.Merge(c);
    Snapshot bc = b;
    bc.Merge(c);
    Snapshot a_bc = a;
    a_bc.Merge(bc);
    EXPECT_EQ(ab_c.counts, a_bc.counts);
    EXPECT_EQ(ab_c.sum, a_bc.sum);
  }
}

TEST(TelemetryHistogramTest, AtomicMergeFromMatchesSnapshotMerge) {
  util::SplitMix64 rng(0x31337);
  LatencyHistogram a, b;
  for (int i = 0; i < 1000; ++i) a.Record(rng.NextBounded(1 << 20));
  for (int i = 0; i < 700; ++i) b.Record(rng.NextBounded(1 << 28));
  Snapshot expect = a.TakeSnapshot();
  expect.Merge(b.TakeSnapshot());
  a.MergeFrom(b);
  const Snapshot got = a.TakeSnapshot();
  EXPECT_EQ(got.counts, expect.counts);
  EXPECT_EQ(got.sum, expect.sum);
}

// ---------------------------------------------------------------------
// Quantile agreement with the exact sorted-sample path.
// ---------------------------------------------------------------------

/// Feeds identical samples to the histogram and a sorted vector; every
/// quantile estimate must be within one bucket's relative error of the
/// exact nearest-rank order statistic.
void CheckQuantileAgreement(const std::vector<uint64_t>& samples) {
  LatencyHistogram h;
  for (uint64_t v : samples) h.Record(v);
  std::vector<uint64_t> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const Snapshot snap = h.TakeSnapshot();
  ASSERT_EQ(snap.total(), samples.size());
  for (const double q :
       {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0}) {
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    const auto exact = static_cast<double>(sorted[rank]);
    const double est = snap.Quantile(q);
    const double tol =
        LatencyHistogram::kRelativeError * (exact > 1.0 ? exact : 1.0);
    ASSERT_NEAR(est, exact, tol) << "q=" << q << " n=" << samples.size();
  }
  // The mean is exact (the sum is tracked outside the buckets).
  long double total = 0;
  for (uint64_t v : samples) total += v;
  ASSERT_DOUBLE_EQ(
      snap.Mean(),
      static_cast<double>(total / static_cast<long double>(samples.size())));
}

TEST(TelemetryHistogramTest, QuantilesMatchSortedSamplesUniform) {
  util::SplitMix64 rng(0x5EED);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<uint64_t> samples;
    const int n = 1 + static_cast<int>(rng.NextBounded(5000));
    for (int i = 0; i < n; ++i) samples.push_back(rng.NextBounded(1 << 22));
    CheckQuantileAgreement(samples);
  }
}

TEST(TelemetryHistogramTest, QuantilesMatchSortedSamplesHeavyTail) {
  util::SplitMix64 rng(0x7A11);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<uint64_t> samples;
    const int n = 2 + static_cast<int>(rng.NextBounded(3000));
    for (int i = 0; i < n; ++i) {
      // Latency-like: mostly small with rare huge spikes.
      samples.push_back(rng.NextU64() >> (rng.NextBounded(52) + 8));
    }
    CheckQuantileAgreement(samples);
  }
}

TEST(TelemetryHistogramTest, QuantilesMatchSortedSamplesConstantAndTiny) {
  CheckQuantileAgreement({42});
  CheckQuantileAgreement({7, 7, 7, 7, 7, 7});
  CheckQuantileAgreement({0, 0, 0, 1});
  CheckQuantileAgreement({1000000, 1});
}

TEST(TelemetryHistogramTest, SummarizeMatchesUtilSummarize) {
  util::SplitMix64 rng(0xFACE);
  std::vector<uint64_t> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(50 + rng.NextBounded(9000));
  LatencyHistogram h;
  for (uint64_t v : samples) h.Record(v);
  const util::LatencySummary hist_s = h.TakeSnapshot().Summarize();
  std::vector<uint64_t> copy = samples;
  const util::LatencySummary exact_s = util::Summarize(copy);
  EXPECT_EQ(hist_s.count, exact_s.count);
  const double tol = LatencyHistogram::kRelativeError;
  EXPECT_NEAR(hist_s.min_ns, exact_s.min_ns, tol * exact_s.min_ns + 1);
  EXPECT_NEAR(hist_s.median_ns, exact_s.median_ns,
              tol * exact_s.median_ns + 1);
  EXPECT_NEAR(hist_s.p99_ns, exact_s.p99_ns, tol * exact_s.p99_ns + 1);
  EXPECT_NEAR(hist_s.max_ns, exact_s.max_ns, tol * exact_s.max_ns + 1);
  EXPECT_NEAR(hist_s.avg_ns, exact_s.avg_ns, 1e-6 * exact_s.avg_ns);
}

TEST(TelemetryHistogramTest, EmptyHistogram) {
  LatencyHistogram h;
  const Snapshot s = h.TakeSnapshot();
  EXPECT_EQ(s.total(), 0u);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.Summarize().count, 0u);
}

// ---------------------------------------------------------------------
// Concurrency: recorded counts are conserved (TSan-checked in CI).
// ---------------------------------------------------------------------

TEST(TelemetryHistogramStressTest, ConcurrentRecordingConservesCount) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  LatencyHistogram h;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      util::SplitMix64 rng(static_cast<uint64_t>(t) + 1);
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Record(rng.NextBounded(1 << 30));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.TotalCount(), kThreads * kPerThread);
  EXPECT_EQ(h.TakeSnapshot().total(), kThreads * kPerThread);
}

TEST(TelemetryHistogramStressTest, ConcurrentRecordAndMergeConserves) {
  // Recorders fill per-thread histograms while a collector repeatedly
  // merges/snapshots the shared one — mirroring the runtime's per-shard
  // histogram + coordinator snapshot topology.
  constexpr int kShards = 4;
  constexpr uint64_t kPerShard = 40000;
  std::vector<LatencyHistogram> shard_hists(kShards);
  LatencyHistogram merged;
  std::vector<std::thread> threads;
  threads.reserve(kShards);
  for (int t = 0; t < kShards; ++t) {
    threads.emplace_back([&shard_hists, t] {
      util::SplitMix64 rng(0x900D + static_cast<uint64_t>(t));
      for (uint64_t i = 0; i < kPerShard; ++i) {
        shard_hists[static_cast<std::size_t>(t)].Record(
            rng.NextBounded(1 << 24));
      }
    });
  }
  // Live snapshots while recording: totals must only grow, never tear.
  uint64_t last_total = 0;
  for (int probe = 0; probe < 50; ++probe) {
    uint64_t total = 0;
    for (const LatencyHistogram& h : shard_hists) total += h.TotalCount();
    EXPECT_GE(total, last_total);
    EXPECT_LE(total, kShards * kPerShard);
    last_total = total;
  }
  for (auto& th : threads) th.join();
  for (const LatencyHistogram& h : shard_hists) merged.MergeFrom(h);
  EXPECT_EQ(merged.TotalCount(), kShards * kPerShard);
}

TEST(TelemetryCounterStressTest, ConcurrentCounterAddsConserve) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  ShardCounters c;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.tuples_in.Add();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.tuples_in.Get(), kThreads * kPerThread);
}

// ---------------------------------------------------------------------
// Counters, gauges, JSON.
// ---------------------------------------------------------------------

TEST(TelemetryCountersTest, CounterAndGaugeBasics) {
  Counter c;
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Get(), 42u);
  c.Reset();
  EXPECT_EQ(c.Get(), 0u);

  MaxGauge m;
  m.Observe(7);
  m.Observe(3);
  EXPECT_EQ(m.Get(), 7u);
  m.Observe(19);
  EXPECT_EQ(m.Get(), 19u);

  Gauge g;
  g.Set(5);
  g.Set(2);
  EXPECT_EQ(g.Get(), 2u);
}

TEST(TelemetryCountersTest, CountersAreCacheLinePadded) {
  EXPECT_EQ(alignof(Counter), kCacheLine);
  EXPECT_GE(sizeof(ShardCounters), 6 * kCacheLine);
}

TEST(TelemetryJsonTest, HistogramJsonHasSummaryAndBuckets) {
  LatencyHistogram h;
  h.Record(100);
  h.Record(100);
  h.Record(5000);
  const std::string json = ToJson(h.TakeSnapshot());
  EXPECT_NE(json.find("\"count\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sum\":5200"), std::string::npos) << json;
  EXPECT_NE(json.find("\"100\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p50\":"), std::string::npos) << json;
}

TEST(TelemetryJsonTest, RuntimeSnapshotJsonTotals) {
  RuntimeSnapshot r;
  ShardSnapshot s1;
  s1.tuples_in = 10;
  s1.tuples_out = 8;
  s1.in_flight = 2;
  ShardSnapshot s2;
  s2.tuples_in = 7;
  s2.tuples_out = 7;
  s2.dropped = 3;
  r.shards = {s1, s2};
  EXPECT_EQ(r.total_in(), 17u);
  EXPECT_EQ(r.total_out(), 15u);
  EXPECT_EQ(r.total_dropped(), 3u);
  EXPECT_EQ(r.total_in_flight(), 2u);
  const std::string json = ToJson(r);
  EXPECT_NE(json.find("\"total_in\":17"), std::string::npos) << json;
  EXPECT_NE(json.find("\"shards\":[{"), std::string::npos) << json;
}

}  // namespace
}  // namespace slick::telemetry
