// Pins src/util/annotations.h's core contract: in production builds the
// analyzer macros are pure markers — no codegen, no layout change, no
// semantic difference. (The attribute-emitting branch only engages under
// __clang__ + SLICK_ANALYZE, i.e. inside the analyzer's own parse; these
// tests build in the normal configuration where the macros must vanish.)

#include "util/annotations.h"

#include <cstdint>
#include <type_traits>

#include <gtest/gtest.h>

namespace {

// An annotated function must be declarable, definable, and callable
// exactly like its plain twin.
SLICK_REALTIME inline uint64_t AnnotatedAdd(uint64_t a, uint64_t b) {
  return a + b;
}
inline uint64_t PlainAdd(uint64_t a, uint64_t b) { return a + b; }

SLICK_REALTIME_ALLOW("test fixture: reason text is analyzer-only")
inline uint64_t AnnotatedAllowAdd(uint64_t a, uint64_t b) { return a + b; }

SLICK_NODISCARD inline bool TryHalve(uint64_t v, uint64_t* out) {
  if (v % 2 != 0) return false;
  *out = v / 2;
  return true;
}

// Macros must compose with member functions, templates, and constexpr.
struct Annotated {
  SLICK_REALTIME uint64_t get() const { return v; }
  SLICK_NODISCARD bool try_set(uint64_t nv) {
    v = nv;
    return true;
  }
  uint64_t v = 0;
};
struct Plain {
  uint64_t get() const { return v; }
  bool try_set(uint64_t nv) {
    v = nv;
    return true;
  }
  uint64_t v = 0;
};

template <typename T>
SLICK_REALTIME constexpr T Twice(T x) {
  return x + x;
}

// Layout parity: the annotations contribute no members, padding, or vtable.
static_assert(sizeof(Annotated) == sizeof(Plain));
static_assert(alignof(Annotated) == alignof(Plain));
static_assert(std::is_trivially_copyable_v<Annotated> ==
              std::is_trivially_copyable_v<Plain>);

// constexpr survives annotation: evaluable at compile time.
static_assert(Twice(21u) == 42u);

TEST(AnnotationsTest, AnnotatedFunctionsBehaveLikePlainOnes) {
  EXPECT_EQ(AnnotatedAdd(40, 2), PlainAdd(40, 2));
  EXPECT_EQ(AnnotatedAllowAdd(40, 2), 42u);
  Annotated a;
  ASSERT_TRUE(a.try_set(7));
  EXPECT_EQ(a.get(), 7u);
}

TEST(AnnotationsTest, NodiscardIsTheRealAttribute) {
  // SLICK_NODISCARD must expand to [[nodiscard]] in every configuration —
  // discarding is flagged at compile time (with -Werror, a build break),
  // and consuming the value compiles cleanly:
  uint64_t half = 0;
  EXPECT_TRUE(TryHalve(84, &half));
  EXPECT_EQ(half, 42u);
  EXPECT_FALSE(TryHalve(7, &half));
  (void)TryHalve(6, &half);  // the sanctioned discard spelling
}

TEST(AnnotationsTest, FunctionTypesAreUnchanged) {
  // The expansion must not alter the function's type (calling convention,
  // noexcept-ness, signature) — pointers to annotated and plain functions
  // are the same type and interchangeable.
  static_assert(std::is_same_v<decltype(&AnnotatedAdd), decltype(&PlainAdd)>);
  uint64_t (*fp)(uint64_t, uint64_t) = &AnnotatedAdd;
  EXPECT_EQ(fp(1, 2), 3u);
}

}  // namespace
