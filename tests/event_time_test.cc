// Event-time aggregation tests (DESIGN.md §13): the EventTimeAcqEngine
// checked differentially against the pane-based TimeAcqEngine (identical
// answers on in-order streams with zero lateness, and convergence to the
// in-order answers under bounded shuffles), KeyedEventWindows against a
// per-key oracle, the parallel runtime's event-time mode against a
// sequential oracle with watermark telemetry, and supervised recovery of
// an event-time query producing bit-identical shard state.

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/sliding_aggregator.h"
#include "core/subtract_on_evict.h"
#include "engine/event_time_engine.h"
#include "engine/keyed_engine.h"
#include "engine/time_acq_engine.h"
#include "ops/arith.h"
#include "ops/minmax.h"
#include "ops/string_ops.h"
#include "runtime/parallel_engine.h"
#include "telemetry/json.h"
#include "telemetry/sink.h"
#include "util/rng.h"
#include "util/serde.h"
#include "window/aggregator.h"
#include "window/ooo_tree.h"

namespace slick {
namespace {

using engine::EventEngineFor;
using engine::EventTimeAcqEngine;
using engine::TimeEngineFor;
using engine::TimeQuerySpec;
using plan::Pat;

// ---------------------------------------------------------------------
// Arrival-capability dispatch (core/sliding_aggregator.h): kOutOfOrder
// selects the OoO tree for every op class; kInOrder keeps the SlickDeque
// family picks; the tree satisfies the OutOfOrderAggregator concept and
// the count-based aggregators do not.
// ---------------------------------------------------------------------
static_assert(
    std::is_same_v<core::ArrivalAggregatorFor<ops::SumInt,
                                              core::Arrival::kOutOfOrder>,
                   window::OooTree<ops::SumInt>>);
static_assert(
    std::is_same_v<core::ArrivalAggregatorFor<ops::Concat,
                                              core::Arrival::kOutOfOrder>,
                   window::OooTree<ops::Concat>>);
static_assert(std::is_same_v<core::ArrivalAggregatorFor<ops::SumInt>,
                             core::SubtractOnEvict<ops::SumInt>>);
static_assert(window::OutOfOrderAggregator<window::OooTree<ops::MaxInt>>);
static_assert(
    !window::OutOfOrderAggregator<core::SubtractOnEvict<ops::SumInt>>);
static_assert(
    runtime::ParallelShardedEngine<window::OooTree<ops::SumInt>>::kEventTime);

template <typename Op>
typename Op::value_type RandomValue(util::SplitMix64& rng);

template <>
int64_t RandomValue<ops::SumInt>(util::SplitMix64& rng) {
  return static_cast<int64_t>(rng.NextBounded(2001)) - 1000;
}
template <>
int64_t RandomValue<ops::MaxInt>(util::SplitMix64& rng) {
  return static_cast<int64_t>(rng.NextBounded(1000000));
}
template <>
std::string RandomValue<ops::Concat>(util::SplitMix64& rng) {
  std::string s;
  const std::size_t len = 1 + rng.NextBounded(3);
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>('a' + rng.NextBounded(26)));
  }
  return s;
}

/// Collects per-query answer vectors from a sink callback.
template <typename Result>
struct AnswerLog {
  std::vector<std::vector<Result>> per_query;
  explicit AnswerLog(std::size_t queries) : per_query(queries) {}
  void operator()(uint32_t q, const Result& r) {
    ASSERT_LT(q, per_query.size());
    per_query[q].push_back(r);
  }
};

// ---------------------------------------------------------------------
// Differential: on an IN-ORDER stream with zero lateness, the event-time
// engine and the pane-based time engine emit identical per-query answer
// sequences — the event path is a strict generalization.
// ---------------------------------------------------------------------
template <typename Op>
void ExpectMatchesPaneEngine(uint64_t seed,
                             const std::vector<TimeQuerySpec>& queries) {
  TimeEngineFor<Op> pane(queries, Pat::kPairs);
  EventEngineFor<Op> event(queries, /*lateness=*/0);
  AnswerLog<typename Op::result_type> pane_log(queries.size());
  AnswerLog<typename Op::result_type> event_log(queries.size());

  util::SplitMix64 rng(seed);
  uint64_t ts = 1;
  for (int i = 0; i < 3000; ++i) {
    ts += rng.NextBounded(8);  // gaps, bursts, and repeated timestamps
    const auto v = RandomValue<Op>(rng);
    pane.Observe(ts, v, pane_log);
    EXPECT_TRUE(event.Observe(ts, v, event_log));
  }
  const uint64_t end = ts + 200;
  pane.AdvanceTo(end, pane_log);
  event.AdvanceTo(end, event_log);

  for (std::size_t q = 0; q < queries.size(); ++q) {
    ASSERT_FALSE(pane_log.per_query[q].empty()) << Op::kName << " q" << q;
    EXPECT_EQ(event_log.per_query[q], pane_log.per_query[q])
        << Op::kName << " query " << q << " seed " << seed;
  }
}

TEST(EventTimeEngineTest, MatchesPaneEngineOnInOrderStreams) {
  const std::vector<TimeQuerySpec> multi = {{20, 5}, {50, 10}, {15, 15}};
  // Plain-associative ops (Concat) resolve the reference engine to
  // Windowed<Daba>, which only answers the full-window range — so the
  // shared-plan reference must hold one query per range there.
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    ExpectMatchesPaneEngine<ops::SumInt>(seed, multi);
    ExpectMatchesPaneEngine<ops::MaxInt>(seed * 31, multi);
    ExpectMatchesPaneEngine<ops::Concat>(seed * 97, {{20, 5}});
    ExpectMatchesPaneEngine<ops::Concat>(seed * 97 + 1, {{15, 15}});
  }
}

// ---------------------------------------------------------------------
// Differential: a bounded shuffle fed with lateness >= the maximum
// displacement converges to EXACTLY the in-order answers — including for
// the non-commutative Concat, since the tree re-sorts by event time.
// ---------------------------------------------------------------------
template <typename Op>
void ExpectShuffleConverges(uint64_t seed,
                            const std::vector<TimeQuerySpec>& queries) {
  constexpr std::size_t kN = 2500;
  constexpr std::size_t kWindow = 24;  // shuffle displacement in positions
  util::SplitMix64 rng(seed);

  std::vector<window::Timed<typename Op::value_type>> events(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    // Strictly increasing timestamps so the shuffle never reorders equal
    // stamps (whose arrival-order merge would legitimately differ).
    events[i].t = 4 * i + 1 + rng.NextBounded(3);
    events[i].v = RandomValue<Op>(rng);
  }

  TimeEngineFor<Op> reference(queries, Pat::kPairs);
  AnswerLog<typename Op::result_type> ref_log(queries.size());
  for (const auto& e : events) reference.Observe(e.t, e.v, ref_log);

  // Block shuffle: full Fisher-Yates inside each kWindow-sized block, so
  // positional displacement is < kWindow both ways and the event-time
  // displacement is < 4 * kWindow. (A sliding "pick from [i, i+W]" shuffle
  // does NOT bound forward displacement — unpicked elements keep getting
  // bounced ahead.)
  auto shuffled = events;
  for (std::size_t b = 0; b < kN; b += kWindow) {
    const std::size_t end = std::min(b + kWindow, kN);
    for (std::size_t i = b; i + 1 < end; ++i) {
      const std::size_t j = i + rng.NextBounded(end - i);
      std::swap(shuffled[i], shuffled[j]);
    }
  }
  const uint64_t lateness = 4 * (kWindow + 1) + 4;
  EventEngineFor<Op> event(queries, lateness);
  AnswerLog<typename Op::result_type> event_log(queries.size());
  for (const auto& e : shuffled) {
    EXPECT_TRUE(event.Observe(e.t, e.v, event_log))
        << "nothing may be dropped when lateness covers the displacement";
  }

  const uint64_t end = events.back().t + 200;
  reference.AdvanceTo(end, ref_log);
  event.AdvanceTo(end + lateness, event_log);

  for (std::size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(event_log.per_query[q], ref_log.per_query[q])
        << Op::kName << " query " << q << " seed " << seed;
  }
  EXPECT_EQ(event.late_dropped(), 0u);
}

TEST(EventTimeEngineTest, BoundedShuffleConvergesToInOrderAnswers) {
  const std::vector<TimeQuerySpec> multi = {{40, 8}, {100, 20}};
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    ExpectShuffleConverges<ops::SumInt>(seed, multi);
    ExpectShuffleConverges<ops::MaxInt>(seed * 13, multi);
    // Single query for Concat: see MatchesPaneEngineOnInOrderStreams.
    ExpectShuffleConverges<ops::Concat>(seed * 101, {{40, 8}});
    ExpectShuffleConverges<ops::Concat>(seed * 101 + 1, {{100, 20}});
  }
}

TEST(EventTimeEngineTest, DropsOnlyTuplesBelowTheEvictionFloor) {
  EventEngineFor<ops::SumInt> eng({{10, 10}}, /*lateness=*/0);
  auto sink = [](uint32_t, int64_t) {};
  EXPECT_TRUE(eng.Observe(100, 1, sink));  // boundaries through 100 emitted
  // The next emittable window is [100, 110): ts 105 is still coverable...
  EXPECT_TRUE(eng.Observe(105, 1, sink));
  // ...but ts 99 is behind every window that can still emit: dropped.
  EXPECT_FALSE(eng.Observe(99, 1, sink));
  EXPECT_EQ(eng.late_dropped(), 1u);
  EXPECT_EQ(eng.watermark(), 105u);
}

TEST(EventTimeEngineTest, TelemetryReportsBoundariesAndWatermark) {
  EventTimeAcqEngine<ops::SumInt, core::OooAggregatorFor<ops::SumInt>,
                     telemetry::CountingEngineSink>
      eng({{10, 5}}, /*lateness=*/0);
  auto sink = [](uint32_t, int64_t) {};
  eng.Observe(3, 7, sink);
  eng.Observe(23, 7, sink);  // boundaries 5, 10, 15, 20 become due
  const telemetry::EngineCounters& c = eng.telemetry().counters;
  EXPECT_EQ(c.tuples_in, 2u);
  EXPECT_EQ(c.answers, 4u);
  EXPECT_EQ(c.panes_closed, 4u);
  EXPECT_EQ(c.watermark, 20u) << "gauge tracks the newest emitted boundary";
}

// ---------------------------------------------------------------------
// Engine checkpoint: framed round-trip restores behavior exactly (the
// restored engine emits the same future answers) and re-saving is
// byte-identical — the property supervised recovery builds on.
// ---------------------------------------------------------------------
TEST(EventTimeEngineTest, FramedCheckpointRoundTripResumesIdentically) {
  const std::vector<TimeQuerySpec> queries = {{30, 10}, {12, 6}};
  EventEngineFor<ops::SumInt> a(queries, /*lateness=*/16);
  util::SplitMix64 rng(77);
  auto ignore = [](uint32_t, int64_t) {};
  uint64_t ts = 1;
  for (int i = 0; i < 500; ++i) {
    ts += rng.NextBounded(6);
    const uint64_t jitter = rng.NextBounded(12);
    a.Observe(ts > jitter ? ts - jitter : ts, RandomValue<ops::SumInt>(rng),
              ignore);
  }

  std::ostringstream frame;
  util::SaveStateFramed(a, frame);
  EventEngineFor<ops::SumInt> b(queries, /*lateness=*/16);
  std::istringstream in(frame.str());
  ASSERT_EQ(util::LoadStateFramed(&b, in), util::FrameError::kOk);

  std::ostringstream resaved;
  util::SaveStateFramed(b, resaved);
  EXPECT_EQ(resaved.str(), frame.str()) << "checkpoint is byte-stable";
  EXPECT_EQ(b.watermark(), a.watermark());
  EXPECT_EQ(b.late_dropped(), a.late_dropped());

  AnswerLog<int64_t> log_a(queries.size());
  AnswerLog<int64_t> log_b(queries.size());
  for (int i = 0; i < 300; ++i) {
    ts += rng.NextBounded(6);
    const auto v = RandomValue<ops::SumInt>(rng);
    a.Observe(ts, v, log_a);
    b.Observe(ts, v, log_b);
  }
  a.AdvanceTo(ts + 100, log_a);
  b.AdvanceTo(ts + 100, log_b);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(log_b.per_query[q], log_a.per_query[q]);
  }

  // A corrupted frame is rejected with a typed error, not absorbed.
  std::string bad = frame.str();
  bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 0x20);
  EventEngineFor<ops::SumInt> c(queries, /*lateness=*/16);
  std::istringstream bad_in(bad);
  EXPECT_NE(util::LoadStateFramed(&c, bad_in), util::FrameError::kOk);
}

// ---------------------------------------------------------------------
// KeyedEventWindows vs a per-key oracle that replicates the admission and
// watermark rules from scratch.
// ---------------------------------------------------------------------
TEST(KeyedEventWindowsTest, MatchesPerKeyOracle) {
  constexpr uint64_t kRange = 50;
  constexpr uint64_t kLateness = 30;
  constexpr uint64_t kKeys = 6;
  engine::KeyedEventWindows<ops::SumInt> keyed(kRange, kLateness);

  std::map<uint64_t, std::multimap<uint64_t, int64_t>> oracle;
  uint64_t max_ts = 0;
  const auto wm = [&] { return max_ts > kLateness ? max_ts - kLateness : 0; };
  const auto low = [&] {
    return wm() >= kRange ? wm() - kRange + 1 : uint64_t{0};
  };

  util::SplitMix64 rng(2024);
  uint64_t base = 1;
  uint64_t expected_drops = 0;
  for (int step = 0; step < 800; ++step) {
    base += rng.NextBounded(4);
    // Jitter must sometimes exceed range + lateness - 1 (= 79, the full
    // admission slack behind max_ts) so that real drops are exercised.
    const uint64_t jitter = rng.NextBounded(kRange + kLateness + 40);
    const uint64_t ts = base > jitter ? base - jitter : base;
    const uint64_t key = rng.NextBounded(kKeys);
    const int64_t v = RandomValue<ops::SumInt>(rng);

    const bool admit = ts >= low();
    ASSERT_EQ(keyed.Push(key, ts, v), admit) << "step " << step;
    if (admit) {
      oracle[key].emplace(ts, v);
      max_ts = std::max(max_ts, ts);
    } else {
      ++expected_drops;
    }
    ASSERT_EQ(keyed.watermark(), wm());

    if (step % 50 == 49) {
      // Periodic maintenance, mirrored on the oracle.
      keyed.EvictExpired();
      for (auto& [k, entries] : oracle) {
        entries.erase(entries.begin(), entries.lower_bound(low()));
      }
      std::erase_if(oracle, [](const auto& kv) { return kv.second.empty(); });
      ASSERT_EQ(keyed.key_count(), oracle.size());
    }
    if (step % 25 == 0) {
      for (const auto& [k, entries] : oracle) {
        int64_t sum = 0;
        for (const auto& [t, val] : entries) {
          if (t >= low() && t <= wm()) sum += val;
        }
        ASSERT_TRUE(keyed.HasKey(k));
        ASSERT_EQ(keyed.Query(k), sum) << "key " << k << " step " << step;
      }
    }
  }
  EXPECT_EQ(keyed.late_dropped(), expected_drops);
  EXPECT_GT(expected_drops, 0u) << "the jitter should exceed lateness "
                                   "sometimes, or the test is too easy";

  // ForEach visits every key with the same windowed answers.
  std::size_t visited = 0;
  keyed.ForEach([&](uint64_t k, int64_t answer) {
    ++visited;
    int64_t sum = 0;
    for (const auto& [t, val] : oracle[k]) {
      if (t >= low() && t <= wm()) sum += val;
    }
    EXPECT_EQ(answer, sum) << "key " << k;
  });
  EXPECT_EQ(visited, keyed.key_count());
}

TEST(KeyedEventWindowsTest, ReclaimsKeysWhoseWindowsEmptied) {
  engine::KeyedEventWindows<ops::SumInt> keyed(/*range=*/10, /*lateness=*/0);
  EXPECT_TRUE(keyed.Push(1, 5, 100));
  EXPECT_TRUE(keyed.Push(2, 1000, 7));  // advances the shared watermark
  EXPECT_EQ(keyed.EvictExpired(), 1u) << "key 1's lone entry expired";
  EXPECT_FALSE(keyed.HasKey(1));
  EXPECT_TRUE(keyed.HasKey(2));
  EXPECT_EQ(keyed.Query(2), 7);
  // Key 1 can return later — at a timestamp inside the current window.
  EXPECT_TRUE(keyed.Push(1, 995, 3));
  EXPECT_EQ(keyed.Query(1), 3);
}

// ---------------------------------------------------------------------
// Parallel runtime event mode vs a sequential oracle that replicates the
// round-robin routing and per-shard watermark protocol.
// ---------------------------------------------------------------------
TEST(ParallelEventTimeTest, MatchesSequentialOracleAcrossShards) {
  constexpr std::size_t kShards = 4;
  constexpr uint64_t kRange = 300;
  constexpr std::size_t kN = 20000;
  using Tree = window::OooTree<ops::SumInt>;

  util::SplitMix64 rng(4242);
  std::vector<window::Timed<int64_t>> events(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    const uint64_t base = i + 1;
    const uint64_t jitter = rng.NextBounded(40);
    events[i].t = base > jitter ? base - jitter : base;
    events[i].v = RandomValue<ops::SumInt>(rng);
  }

  runtime::ParallelShardedEngine<Tree>::Options opt;
  opt.batch = 64;
  runtime::ParallelShardedEngine<Tree> eng(kRange, kShards, opt);
  std::vector<uint64_t> shard_max(kShards, 0);
  for (std::size_t i = 0; i < kN; ++i) {
    eng.push(events[i].t, events[i].v);
    shard_max[i % kShards] = std::max(shard_max[i % kShards], events[i].t);
  }

  const uint64_t expected_wm =
      *std::min_element(shard_max.begin(), shard_max.end());
  const uint64_t lo = expected_wm >= kRange ? expected_wm - kRange + 1 : 0;
  int64_t expected = 0;
  for (const auto& e : events) {
    if (e.t >= lo && e.t <= expected_wm) expected += e.v;
  }

  EXPECT_EQ(eng.query(), expected);
  EXPECT_EQ(eng.watermark(), expected_wm);
  EXPECT_EQ(eng.max_ts_routed(),
            *std::max_element(shard_max.begin(), shard_max.end()));

  // The quiescent query bulk-evicted everything behind the window on every
  // shard: per-shard trees hold only coverable entries.
  for (std::size_t i = 0; i < kShards; ++i) {
    if (!eng.shard(i).empty()) {
      EXPECT_GE(eng.shard(i).oldest(), lo);
    }
  }
  eng.stop();
}

TEST(ParallelEventTimeTest, SnapshotReportsEventTimeWatermarks) {
  using Tree = window::OooTree<ops::MaxInt>;
  runtime::ParallelShardedEngine<Tree> eng(/*range=*/100, /*shards=*/2);
  for (uint64_t i = 1; i <= 1000; ++i) eng.push(i, static_cast<int64_t>(i));
  // Shard 0 holds the odd timestamps (max 999), shard 1 the even (max
  // 1000): the global watermark is 999, so ts 1000 is still AHEAD of the
  // window (899, 999] and the answer is 999.
  EXPECT_EQ(eng.query(), 999);
  EXPECT_EQ(eng.watermark(), 999u);

  const telemetry::RuntimeSnapshot snap = eng.snapshot();
  ASSERT_EQ(snap.shards.size(), 2u);
  for (const telemetry::ShardSnapshot& s : snap.shards) {
    // Quiescent cut: each shard drained everything routed to it, so its
    // watermark is that shard's max routed ts (999 or 1000) and the
    // event-time lag is at most one round-robin step.
    EXPECT_GE(s.watermark, 999u);
    EXPECT_LE(s.watermark_lag, 1u);
  }
  const std::string json = ToJson(snap.shards[0]);
  EXPECT_NE(json.find("\"watermark\":"), std::string::npos) << json;
  eng.stop();
}

TEST(ParallelEventTimeTest, SupervisedRecoveryIsBitIdentical) {
  constexpr std::size_t kShards = 2;
  constexpr uint64_t kRange = 500;
  constexpr std::size_t kN = 6000;
  using Tree = window::OooTree<ops::SumInt>;
  using Engine = runtime::ParallelShardedEngine<Tree>;

  util::SplitMix64 rng(909);
  std::vector<window::Timed<int64_t>> events(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    const uint64_t base = i + 1;
    const uint64_t jitter = rng.NextBounded(64);
    events[i].t = base > jitter ? base - jitter : base;
    events[i].v = RandomValue<ops::SumInt>(rng);
  }

  Engine::Options opt;
  opt.batch = 32;
  opt.ring_capacity = 1 << 10;
  opt.checkpoint_interval = 128;

  const auto run = [&](bool inject) {
    Engine eng(kRange, kShards, opt);
    if (inject) {
      eng.InjectWorkerKill(0, runtime::KillPoint::kAfterSlide, 3);
      eng.InjectWorkerKill(1, runtime::KillPoint::kBeforeSlide, 5);
    }
    eng.push_n(events.data(), events.size());
    const int64_t answer = eng.query();
    const uint64_t wm = eng.watermark();
    std::vector<std::string> states;
    for (std::size_t i = 0; i < kShards; ++i) {
      std::ostringstream os;
      eng.shard(i).SaveState(os);
      states.push_back(os.str());
    }
    const uint64_t restarts = eng.stats().restarts;
    eng.stop();
    return std::tuple(answer, wm, states, restarts);
  };

  const auto [ans_clean, wm_clean, st_clean, restarts_clean] = run(false);
  const auto [ans_fault, wm_fault, st_fault, restarts_fault] = run(true);

  EXPECT_EQ(restarts_clean, 0u);
  EXPECT_GE(restarts_fault, 2u) << "both injected kills must have fired";
  EXPECT_EQ(ans_fault, ans_clean);
  EXPECT_EQ(wm_fault, wm_clean);
  for (std::size_t i = 0; i < kShards; ++i) {
    EXPECT_EQ(st_fault[i], st_clean[i])
        << "shard " << i << " state diverged across crash recovery";
  }
}

}  // namespace
}  // namespace slick
