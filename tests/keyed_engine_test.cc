// KeyedWindows tests: per-key sliding windows against a per-key model,
// plus eviction and the cross-key roll-up.

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "core/slick_deque_inv.h"
#include "core/slick_deque_noninv.h"
#include "engine/keyed_engine.h"
#include "ops/arith.h"
#include "ops/minmax.h"
#include "util/rng.h"

namespace slick::engine {
namespace {

TEST(KeyedWindowsTest, PerKeyWindowsAreIndependent) {
  KeyedWindows<core::SlickDequeInv<ops::SumInt>> keyed(3);
  EXPECT_EQ(keyed.Push(1, 10), 10);
  EXPECT_EQ(keyed.Push(2, 100), 100);
  EXPECT_EQ(keyed.Push(1, 20), 30);
  EXPECT_EQ(keyed.Push(1, 30), 60);
  EXPECT_EQ(keyed.Push(1, 40), 90);  // 10 expired from key 1's window
  EXPECT_EQ(keyed.Query(2), 100);    // untouched by key 1's traffic
  EXPECT_EQ(keyed.key_count(), 2u);
}

TEST(KeyedWindowsTest, MatchesPerKeyModel) {
  const std::size_t window = 8;
  KeyedWindows<core::SlickDequeNonInv<ops::MaxInt>> keyed(window);
  std::map<uint64_t, std::deque<int64_t>> model;
  util::SplitMix64 rng(17);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t key = rng.NextBounded(7);
    const int64_t v = static_cast<int64_t>(rng.NextBounded(100000));
    auto& dq = model[key];
    dq.push_back(v);
    if (dq.size() > window) dq.pop_front();
    int64_t expect = INT64_MIN;
    for (int64_t x : dq) expect = std::max(expect, x);
    ASSERT_EQ(keyed.Push(key, v), expect) << "key=" << key << " i=" << i;
  }
}

TEST(KeyedWindowsTest, EvictDropsState) {
  KeyedWindows<core::SlickDequeInv<ops::SumInt>> keyed(4);
  keyed.Push(5, 7);
  EXPECT_TRUE(keyed.HasKey(5));
  EXPECT_TRUE(keyed.Evict(5));
  EXPECT_FALSE(keyed.HasKey(5));
  EXPECT_FALSE(keyed.Evict(5));
  // A re-seen key starts a fresh window.
  EXPECT_EQ(keyed.Push(5, 3), 3);
}

TEST(KeyedWindowsTest, RollUpFoldsPerKeyAnswers) {
  KeyedWindows<core::SlickDequeNonInv<ops::MaxInt>> keyed(4);
  keyed.Push(0, 10);
  keyed.Push(1, 50);
  keyed.Push(2, 30);
  keyed.Push(1, 20);  // key 1's window max stays 50
  int64_t global = INT64_MIN;
  std::size_t visited = 0;
  keyed.ForEach([&](uint64_t, int64_t answer) {
    global = std::max(global, answer);
    ++visited;
  });
  EXPECT_EQ(visited, 3u);
  EXPECT_EQ(global, 50);
}

TEST(KeyedWindowsTest, UnknownKeyQueryDies) {
  KeyedWindows<core::SlickDequeInv<ops::SumInt>> keyed(4);
  EXPECT_DEATH(keyed.Query(123), "unknown key");
}

TEST(KeyedWindowsTest, MemoryGrowsWithKeys) {
  KeyedWindows<core::SlickDequeInv<ops::Sum>> keyed(64);
  const std::size_t empty = keyed.memory_bytes();
  for (uint64_t k = 0; k < 50; ++k) keyed.Push(k, 1.0);
  EXPECT_GT(keyed.memory_bytes(), empty + 50 * 64 * sizeof(double) / 2);
  EXPECT_EQ(keyed.key_count(), 50u);
}

}  // namespace
}  // namespace slick::engine
