// Empirical verification of the space complexities (paper §4.2, Table 1):
// per-structure byte accounting must track the analytical forms — n for
// Naive and SlickDeque (Inv), 2·2^⌈log₂n⌉ for FlatFAT/B-Int, 2n for
// FlatFIT/TwoStacks/DABA, input-dependent (≤ 2n, typically ≪ 2n) for
// SlickDeque (Non-Inv).

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/slick_deque_inv.h"
#include "core/slick_deque_noninv.h"
#include "core/windowed.h"
#include "ops/arith.h"
#include "ops/minmax.h"
#include "util/math.h"
#include "util/rng.h"
#include "window/b_int.h"
#include "window/daba.h"
#include "window/flat_fat.h"
#include "window/flat_fit.h"
#include "window/naive.h"
#include "window/two_stacks.h"

namespace slick {
namespace {

constexpr std::size_t kValue = sizeof(double);

template <typename Agg>
std::size_t FilledFootprint(std::size_t n, uint64_t seed = 5) {
  using Op = typename Agg::op_type;
  Agg agg(n);
  util::SplitMix64 rng(seed);
  for (std::size_t i = 0; i < 2 * n + 2; ++i) {
    agg.slide(Op::lift(rng.NextDouble()));
  }
  return agg.memory_bytes();
}

class MemorySweep : public ::testing::TestWithParam<std::size_t> {};
INSTANTIATE_TEST_SUITE_P(Windows, MemorySweep,
                         ::testing::Values(16, 64, 100, 1000, 1024, 1025,
                                           4096, 10000),
                         [](const auto& tpi) {
                           std::string name("n");
                           name += std::to_string(tpi.param);
                           return name;
                         });

TEST_P(MemorySweep, NaiveIsN) {
  const std::size_t n = GetParam();
  const std::size_t bytes = FilledFootprint<window::NaiveWindow<ops::Sum>>(n);
  EXPECT_GE(bytes, n * kValue);
  EXPECT_LE(bytes, n * kValue + 512);
}

TEST_P(MemorySweep, SlickDequeInvMatchesNaive) {
  // Paper: n + 1 — the only algorithm that matches Naive's footprint.
  const std::size_t n = GetParam();
  const std::size_t naive = FilledFootprint<window::NaiveWindow<ops::Sum>>(n);
  const std::size_t slick = FilledFootprint<core::SlickDequeInv<ops::Sum>>(n);
  EXPECT_LE(slick, naive + kValue + 64);
}

TEST_P(MemorySweep, FlatFatAndBIntRoundUpToTwicePowerOfTwo) {
  const std::size_t n = GetParam();
  const std::size_t rounded = util::NextPowerOfTwo(n);
  for (const std::size_t bytes :
       {FilledFootprint<window::FlatFat<ops::Sum>>(n),
        FilledFootprint<window::BInt<ops::Sum>>(n)}) {
    EXPECT_GE(bytes, 2 * rounded * kValue - 256);
    EXPECT_LE(bytes, 2 * rounded * kValue + 512);
  }
  // Worst case ~3n just above a power of two (paper §4.2).
  if (!util::IsPowerOfTwo(n)) {
    EXPECT_GE(2 * rounded, 2 * n);
  }
}

TEST_P(MemorySweep, FlatFitIsTwoN) {
  const std::size_t n = GetParam();
  const std::size_t bytes = FilledFootprint<window::FlatFit<ops::Sum>>(n);
  // vals (n values) + jump (n indices) + bounded stack scratch.
  EXPECT_GE(bytes, 2 * n * kValue);
  EXPECT_LE(bytes, 3 * n * kValue + 512);
}

TEST_P(MemorySweep, TwoStacksIsTwoN) {
  const std::size_t n = GetParam();
  const std::size_t bytes =
      FilledFootprint<core::Windowed<window::TwoStacks<ops::Sum>>>(n);
  EXPECT_GE(bytes, 2 * n * kValue);
  // Stack flips copy between two geometrically grown vectors: up to ~2x
  // capacity headroom on each (the paper's 2n counts live entries).
  EXPECT_LE(bytes, 8 * n * kValue + 512);
}

TEST_P(MemorySweep, DabaIsTwoNPlusChunkSlack) {
  const std::size_t n = GetParam();
  const std::size_t bytes =
      FilledFootprint<core::Windowed<window::Daba<ops::Sum>>>(n);
  // Slack: two partially used chunks plus one chunk pointer per chunk
  // (the paper's 2n + 4*sqrt(n) shape with k = n/64 fixed-size chunks).
  const std::size_t chunk_slack =
      2 * 64 * 2 * kValue + (n / 64 + 2) * sizeof(void*) + 1024;
  EXPECT_GE(bytes, 2 * n * kValue);
  EXPECT_LE(bytes, 2 * n * kValue + chunk_slack);
}

TEST_P(MemorySweep, SlickDequeNonInvFarBelowTwoNOnRandomInput) {
  // Paper Fig 15: the deque keeps only the monotone candidate suffix —
  // ~log(n) nodes for i.i.d. input — so the footprint is a small fraction
  // of every other algorithm's.
  const std::size_t n = GetParam();
  const std::size_t bytes =
      FilledFootprint<core::SlickDequeNonInv<ops::Max>>(n);
  if (n >= 1000) {
    EXPECT_LE(bytes, n * kValue / 2);
  }
  EXPECT_LE(bytes, 2 * n * kValue + 2 * 64 * 2 * kValue + 512);
}

TEST(MemoryShapeTest, SlickDequeNonInvWorstCaseIsTwoN) {
  // Descending input fills the deque: 2n plus two chunks of slack (§4.2).
  const std::size_t n = 4096;
  core::SlickDequeNonInv<ops::Max> agg(n);
  for (std::size_t i = 0; i < n; ++i) {
    agg.slide(static_cast<double>(n - i));
  }
  EXPECT_EQ(agg.node_count(), n);
  const std::size_t bytes = agg.memory_bytes();
  EXPECT_GE(bytes, 2 * n * kValue);
  EXPECT_LE(bytes, 2 * n * kValue + 4 * 64 * 2 * kValue + 512);
}

TEST(MemoryShapeTest, SlickDequeNonInvBestCaseIsConstant) {
  // Ascending input: every arrival evicts the whole deque (§4.2 "best case
  // ... constant").
  core::SlickDequeNonInv<ops::Max> agg(1 << 20);
  for (std::size_t i = 0; i < 100000; ++i) {
    agg.slide(static_cast<double>(i));
  }
  EXPECT_EQ(agg.node_count(), 1u);
  EXPECT_LE(agg.memory_bytes(), 4096u);
}

TEST(MemoryShapeTest, MemoryGrowsMonotonicallyWithWindow) {
  std::size_t prev = 0;
  for (std::size_t n : {64, 256, 1024, 4096}) {
    const std::size_t bytes = FilledFootprint<window::NaiveWindow<ops::Sum>>(n);
    EXPECT_GT(bytes, prev);
    prev = bytes;
  }
}

}  // namespace
}  // namespace slick
