// Differential concurrency tests for the parallel sharded runtime: the
// same synthetic streams (stream/synthetic.h) are fed through
// ParallelShardedEngine, the single-threaded RoundRobinSharded simulation,
// and a single-window NaiveWindow oracle, and the answers must agree at
// every epoch (slide barrier). The CI ThreadSanitizer job runs this file to
// machine-check the runtime's ring protocol and epoch-snapshot handshake.

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/slick_deque_inv.h"
#include "core/slick_deque_noninv.h"
#include "engine/sharded.h"
#include "ops/arith.h"
#include "ops/minmax.h"
#include "runtime/parallel_engine.h"
#include "stream/synthetic.h"
#include "window/naive.h"

namespace slick {
namespace {

/// The synthetic energy stream quantized to exact integers so the three
/// implementations can be compared with == (no float fold-order slack).
std::vector<int64_t> IntStream(std::size_t count, uint64_t seed) {
  stream::SyntheticSensorSource src(seed);
  const std::vector<double> energy = src.MakeEnergySeries(count, 0);
  std::vector<int64_t> out;
  out.reserve(count);
  for (double v : energy) out.push_back(static_cast<int64_t>(v * 1024.0));
  return out;
}

/// Feeds the stream tuple-by-tuple into all three implementations and
/// asserts identical answers at every slide barrier past warm-up. Small
/// ring/batch options force the runtime through its staging, backpressure
/// and parking paths rather than the fast path only.
template <typename Agg>
void RunDifferential(std::size_t window, std::size_t shards, uint64_t seed) {
  using Op = typename Agg::op_type;
  runtime::ParallelShardedEngine<Agg> parallel(
      window, shards,
      {.ring_capacity = 16, .batch = 3,
       .backpressure = runtime::Backpressure::kBlock});
  engine::RoundRobinSharded<Agg> sharded(window, shards);
  window::NaiveWindow<Op> oracle(window);

  const std::vector<int64_t> stream = IntStream(4 * window + 7 * shards, seed);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const auto v = Op::lift(stream[i]);
    parallel.push(v);
    sharded.slide(v);
    oracle.slide(v);
    if ((i + 1) % shards == 0 && i + 1 >= window) {
      const auto expected = oracle.query();
      ASSERT_EQ(sharded.query(), expected)
          << "sharded: window=" << window << " shards=" << shards << " i=" << i;
      ASSERT_EQ(parallel.query(), expected)
          << "parallel: window=" << window << " shards=" << shards
          << " i=" << i;
    }
  }
  parallel.stop();
  const auto stats = parallel.stats();
  EXPECT_EQ(stats.admitted, stream.size());
  EXPECT_EQ(stats.processed, stream.size());
  EXPECT_EQ(stats.dropped, 0u);
}

class ParallelSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};
INSTANTIATE_TEST_SUITE_P(
    Grid, ParallelSweep,
    ::testing::Values(std::tuple{8, 2}, std::tuple{8, 4}, std::tuple{8, 8},
                      std::tuple{64, 4}, std::tuple{96, 3},
                      std::tuple{128, 8}),
    [](const auto& tpi) {
      std::string name("w");
      name += std::to_string(std::get<0>(tpi.param));
      name += 's';
      name += std::to_string(std::get<1>(tpi.param));
      return name;
    });

TEST_P(ParallelSweep, SumMatchesShardedAndOracle) {
  const auto [w, s] = GetParam();
  RunDifferential<core::SlickDequeInv<ops::SumInt>>(w, s, 11);
}
TEST_P(ParallelSweep, MaxMatchesShardedAndOracle) {
  const auto [w, s] = GetParam();
  RunDifferential<core::SlickDequeNonInv<ops::MaxInt>>(w, s, 12);
}

// Warm-up semantics mirror RoundRobinSharded: ready() flips exactly when
// every shard's window is full (staged elements count — they are admitted,
// just not yet flushed to the rings).
TEST(ParallelEngineTest, ReadyFlipsAfterGlobalWindow) {
  runtime::ParallelShardedEngine<core::SlickDequeNonInv<ops::MaxInt>> eng(
      8, 4, {.ring_capacity = 16, .batch = 4});
  for (int i = 0; i < 7; ++i) {
    EXPECT_FALSE(eng.ready()) << "i=" << i;
    eng.push(i);
  }
  EXPECT_FALSE(eng.ready());
  eng.push(7);
  EXPECT_TRUE(eng.ready());
  EXPECT_EQ(eng.query(), 7);
}

// Bounded rings with kDropNewest shed instead of blocking; every element
// is either admitted or counted, never silently lost or buffered without
// bound.
TEST(ParallelEngineTest, DropNewestConservesAccounting) {
  runtime::ParallelShardedEngine<core::SlickDequeInv<ops::SumInt>> eng(
      8, 2,
      {.ring_capacity = 4, .batch = 1,
       .backpressure = runtime::Backpressure::kDropNewest});
  constexpr uint64_t kPushes = 50000;
  for (uint64_t i = 0; i < kPushes; ++i) eng.push(1);
  eng.flush();
  eng.stop();
  const auto stats = eng.stats();
  EXPECT_EQ(stats.admitted + stats.dropped, kPushes);
  EXPECT_EQ(stats.processed, stats.admitted);
  EXPECT_GE(stats.admitted, 8u);  // workers drained at least the warm-up
  // Every admitted element had value 1, so the window sums to exactly 8.
  EXPECT_TRUE(eng.ready());
  EXPECT_EQ(eng.query(), 8);
}

// Graceful shutdown drains in-flight elements: nothing admitted is lost,
// and stop() is idempotent (the destructor calls it again).
TEST(ParallelEngineTest, StopDrainsInFlightElements) {
  runtime::ParallelShardedEngine<core::SlickDequeInv<ops::SumInt>> eng(
      16, 4, {.ring_capacity = 64, .batch = 8});
  for (int64_t i = 0; i < 10000; ++i) eng.push(i);
  eng.stop();
  const auto stats = eng.stats();
  EXPECT_EQ(stats.admitted, 10000u);
  EXPECT_EQ(stats.processed, 10000u);
  // Post-shutdown queries still answer from the drained state: the window
  // holds 9984..9999, which sums to 159864.
  EXPECT_EQ(eng.query(), 159864);
}

// Construct/destroy with no traffic must not hang (workers park on empty
// rings and are woken by close()).
TEST(ParallelEngineTest, IdleEngineShutsDownCleanly) {
  runtime::ParallelShardedEngine<core::SlickDequeInv<ops::SumInt>> eng(8, 4);
  EXPECT_EQ(eng.shard_count(), 4u);
  EXPECT_FALSE(eng.ready());
}

TEST(ParallelEngineTest, InvalidConfigsDie) {
  // Re-execute rather than fork: earlier tests in this binary ran threads.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  using Engine =
      runtime::ParallelShardedEngine<core::SlickDequeInv<ops::SumInt>>;
  EXPECT_DEATH(Engine(10, 3), "multiple of the shard count");
  EXPECT_DEATH(Engine(8, 0), "at least one shard");
}

}  // namespace
}  // namespace slick
