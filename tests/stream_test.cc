#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "stream/synthetic.h"

namespace slick::stream {
namespace {

TEST(SyntheticSensorSourceTest, DeterministicForSeed) {
  SyntheticSensorSource a(7), b(7), c(8);
  bool any_diff = false;
  for (int i = 0; i < 1000; ++i) {
    const SensorTuple ta = a.Next();
    const SensorTuple tb = b.Next();
    const SensorTuple tc = c.Next();
    ASSERT_EQ(ta.seq, tb.seq);
    ASSERT_EQ(ta.energy, tb.energy);
    ASSERT_EQ(ta.state_bits, tb.state_bits);
    any_diff = any_diff || ta.energy != tc.energy;
  }
  EXPECT_TRUE(any_diff);  // different seeds give different streams
}

TEST(SyntheticSensorSourceTest, SeedStabilityGoldenValues) {
  // The stream for a fixed seed is part of the repo's reproducibility
  // contract: benchmark numbers (EXPERIMENTS.md) and the telemetry dump are
  // only comparable across machines/builds if the same seed yields the same
  // stream. These goldens were captured from the reference implementation;
  // a change here means every published number must be re-derived.
  //
  // state_bits comes straight from SplitMix64 (integer, exact); energy goes
  // through std::sin, so allow ~1 ulp of libm slack via a relative 1e-9.
  struct Golden {
    double e0, e1, e2;
    uint64_t bits;
  };
  static constexpr Golden kGolden[] = {
      {42.552705925576966, 87.187094021791339, 23.625050574417976,
       UINT64_C(17579929910261529006)},
      {42.971526962580057, 86.754794826923728, 24.011417645100792,
       UINT64_C(5177862299891177317)},
      {43.094118773068601, 86.347277014859728, 24.407603417710483,
       UINT64_C(11729662859921736356)},
      {43.721294114674137, 85.908706305387383, 24.375864378717413,
       UINT64_C(17885013797299989902)},
      {44.420334096380955, 86.000160468012794, 24.140870129557197,
       UINT64_C(12715926914719153673)},
  };
  SyntheticSensorSource src(2026);
  for (const Golden& g : kGolden) {
    const SensorTuple t = src.Next();
    EXPECT_NEAR(t.energy[0], g.e0, 1e-9 * g.e0);
    EXPECT_NEAR(t.energy[1], g.e1, 1e-9 * g.e1);
    EXPECT_NEAR(t.energy[2], g.e2, 1e-9 * g.e2);
    EXPECT_EQ(t.state_bits, g.bits);
  }
  // Long-prefix checksum: catches divergence anywhere in the first 10k
  // tuples, not just the first five.
  SyntheticSensorSource chk(2026);
  long double acc = 0;
  for (int i = 0; i < 10000; ++i) {
    const SensorTuple t = chk.Next();
    acc += t.energy[0] + t.energy[1] + t.energy[2];
  }
  EXPECT_NEAR(static_cast<double>(acc), 1521096.7649927162, 1e-3);
}

TEST(SyntheticSensorSourceTest, EnergyStrictlyPositiveAndBounded) {
  SyntheticSensorSource src(123);
  for (int i = 0; i < 100000; ++i) {
    const SensorTuple t = src.Next();
    for (double e : t.energy) {
      ASSERT_GT(e, 0.0);
      ASSERT_LT(e, 1000.0);
    }
  }
}

TEST(SyntheticSensorSourceTest, SequenceIsMonotone) {
  SyntheticSensorSource src(5);
  for (uint64_t i = 0; i < 100; ++i) EXPECT_EQ(src.Next().seq, i);
}

TEST(SyntheticSensorSourceTest, ChannelsAreDistinct) {
  SyntheticSensorSource src(9);
  double mean[3] = {0, 0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const SensorTuple t = src.Next();
    for (int c = 0; c < 3; ++c) mean[c] += t.energy[static_cast<size_t>(c)];
  }
  for (double& m : mean) m /= n;
  // Channels orbit their distinct base levels (42, 87, 23).
  EXPECT_NEAR(mean[0], 42.0, 15.0);
  EXPECT_NEAR(mean[1], 87.0, 15.0);
  EXPECT_NEAR(mean[2], 23.0, 15.0);
  EXPECT_GT(mean[1], mean[0]);
  EXPECT_GT(mean[0], mean[2]);
}

TEST(SyntheticSensorSourceTest, StreamIsAutocorrelated) {
  // The source must look like real sensor data (random walk), not white
  // noise: lag-1 autocorrelation should be strongly positive. This is the
  // property that makes SlickDeque (Non-Inv)'s deque behaviour realistic.
  SyntheticSensorSource src(31);
  const std::vector<double> xs = src.MakeEnergySeries(50000, 0);
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double num = 0, den = 0;
  for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
    num += (xs[i] - mean) * (xs[i + 1] - mean);
    den += (xs[i] - mean) * (xs[i] - mean);
  }
  EXPECT_GT(num / den, 0.9);
}

TEST(SyntheticSensorSourceTest, TiesAreRare) {
  // Adjacent equal readings would distort the monotonic-deque statistics.
  SyntheticSensorSource src(77);
  const std::vector<double> xs = src.MakeEnergySeries(20000, 1);
  int ties = 0;
  for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
    if (xs[i] == xs[i + 1]) ++ties;
  }
  EXPECT_LT(ties, 5);
}

TEST(SyntheticSensorSourceTest, MakeEnergySeriesMatchesNext) {
  SyntheticSensorSource a(55), b(55);
  const std::vector<double> xs = a.MakeEnergySeries(100, 2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(xs[static_cast<size_t>(i)], b.Next().energy[2]);
  }
}

}  // namespace
}  // namespace slick::stream
