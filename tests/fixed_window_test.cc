// Oracle-driven validation of every fixed-window (slide-based) aggregator:
// Naive, FlatFAT, B-Int, FlatFIT, SlickDeque (Inv), SlickDeque (Non-Inv) and
// the Windowed<> adapter over TwoStacks/DABA. Each parameterized sweep runs
// a window size × input-shape grid and compares every answer — full window
// and, where supported, every sub-range — against a brute-force model.

#include <algorithm>
#include <cstdint>
#include <deque>
#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/range_aggregator.h"
#include "core/slick_deque_inv.h"
#include "core/slick_deque_noninv.h"
#include "core/windowed.h"
#include "ops/ops.h"
#include "util/rng.h"
#include "window/b_int.h"
#include "window/daba.h"
#include "window/flat_fat.h"
#include "window/flat_fit.h"
#include "window/naive.h"
#include "window/two_stacks.h"

namespace slick {
namespace {

using ::slick::core::SlickDequeInv;
using ::slick::core::SlickDequeNonInv;
using ::slick::core::Windowed;
using ::slick::window::BInt;
using ::slick::window::Daba;
using ::slick::window::FlatFat;
using ::slick::window::FlatFit;
using ::slick::window::NaiveWindow;
using ::slick::window::TwoStacks;

// Input shapes: the deque-based algorithms are input-sensitive (§4.1), so
// the sweep covers the regimes that stress them differently.
enum class Shape { kRandom, kAscending, kDescending, kTiesHeavy };

int64_t GenInt(Shape shape, std::size_t step, util::SplitMix64& rng) {
  switch (shape) {
    case Shape::kRandom:
      return static_cast<int64_t>(rng.NextBounded(2001)) - 1000;
    case Shape::kAscending:
      return static_cast<int64_t>(step);
    case Shape::kDescending:
      return 1000000 - static_cast<int64_t>(step);
    case Shape::kTiesHeavy:
      return static_cast<int64_t>(rng.NextBounded(3));
  }
  return 0;
}

inline uint64_t step_counter = 0;

template <typename Op>
typename Op::value_type LiftInt(int64_t v) {
  if constexpr (std::is_same_v<typename Op::input_type, int64_t>) {
    return Op::lift(v);
  } else if constexpr (std::is_same_v<typename Op::input_type, std::string>) {
    return Op::lift(std::string(1, static_cast<char>('a' + ((v % 26) + 26) % 26)));
  } else if constexpr (std::is_same_v<typename Op::input_type,
                                      ops::ArgSample>) {
    return Op::lift(ops::ArgSample{static_cast<double>(v),
                                   static_cast<uint64_t>(step_counter++)});
  } else {
    return Op::lift(static_cast<typename Op::input_type>(v));
  }
}

// Brute-force model of an always-full window (identity-prefilled).
template <typename Op>
class Model {
 public:
  explicit Model(std::size_t window) : vals_(window, Op::identity()) {}

  void slide(typename Op::value_type v) {
    vals_.pop_front();
    vals_.push_back(std::move(v));
  }

  typename Op::result_type query(std::size_t range) const {
    auto acc = Op::identity();
    for (std::size_t i = vals_.size() - range; i < vals_.size(); ++i) {
      acc = Op::combine(acc, vals_[i]);
    }
    return Op::lower(acc);
  }

 private:
  std::deque<typename Op::value_type> vals_;
};

// Uniform construction across aggregators with different constructors.
template <typename Agg>
struct Factory {
  static Agg Make(std::size_t window) { return Agg(window); }
};
template <ops::InvertibleOp Op>
struct Factory<SlickDequeInv<Op>> {
  static SlickDequeInv<Op> Make(std::size_t window) {
    std::vector<std::size_t> ranges(window);
    std::iota(ranges.begin(), ranges.end(), 1);
    return SlickDequeInv<Op>(window, std::move(ranges));
  }
};

// Drives `Agg` against the model. `check_ranges` additionally validates
// every sub-range 1..window after each slide (multi-query behaviour).
template <typename Agg>
void RunOracle(std::size_t window, Shape shape, bool check_ranges) {
  using Op = typename Agg::op_type;
  Agg agg = Factory<Agg>::Make(window);
  Model<Op> model(window);
  util::SplitMix64 rng(0x5eed + window * 1315423911ULL +
                       static_cast<uint64_t>(shape));
  const std::size_t steps = 3 * window + 40;
  for (std::size_t step = 0; step < steps; ++step) {
    auto v = LiftInt<Op>(GenInt(shape, step, rng));
    agg.slide(v);
    model.slide(v);
    ASSERT_EQ(agg.query(), model.query(window))
        << "window=" << window << " step=" << step << " (full range)";
    if (check_ranges) {
      for (std::size_t r = 1; r <= window; ++r) {
        ASSERT_EQ(agg.query(r), model.query(r))
            << "window=" << window << " step=" << step << " range=" << r;
      }
    }
  }
}

class WindowSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, Shape>> {
 protected:
  std::size_t window() const { return std::get<0>(GetParam()); }
  Shape shape() const { return std::get<1>(GetParam()); }
};

INSTANTIATE_TEST_SUITE_P(
    Grid, WindowSweep,
    ::testing::Combine(::testing::ValuesIn(std::vector<std::size_t>{
                           1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 64,
                           100}),
                       ::testing::Values(Shape::kRandom, Shape::kAscending,
                                         Shape::kDescending,
                                         Shape::kTiesHeavy)),
    [](const auto& tpi) {
      // Built with += (not chained operator+): GCC 12's -Wrestrict
      // false-positives on `const char* + std::string&&` at -O2.
      std::string name = "w";
      name += std::to_string(std::get<0>(tpi.param));
      name += "_shape";
      name += std::to_string(static_cast<int>(std::get<1>(tpi.param)));
      return name;
    });

// --------------------------- Naive ---------------------------------------

TEST_P(WindowSweep, NaiveSumAllRanges) {
  RunOracle<NaiveWindow<ops::SumInt>>(window(), shape(), true);
}
TEST_P(WindowSweep, NaiveMaxAllRanges) {
  RunOracle<NaiveWindow<ops::MaxInt>>(window(), shape(), true);
}
TEST_P(WindowSweep, NaiveConcatAllRanges) {
  RunOracle<NaiveWindow<ops::Concat>>(window(), shape(), true);
}

// --------------------------- FlatFAT -------------------------------------

TEST_P(WindowSweep, FlatFatSumAllRanges) {
  RunOracle<FlatFat<ops::SumInt>>(window(), shape(), true);
}
TEST_P(WindowSweep, FlatFatMaxAllRanges) {
  RunOracle<FlatFat<ops::MaxInt>>(window(), shape(), true);
}
TEST_P(WindowSweep, FlatFatConcatAllRanges) {
  RunOracle<FlatFat<ops::Concat>>(window(), shape(), true);
}

// --------------------------- B-Int ---------------------------------------

TEST_P(WindowSweep, BIntSumAllRanges) {
  RunOracle<BInt<ops::SumInt>>(window(), shape(), true);
}
TEST_P(WindowSweep, BIntMaxAllRanges) {
  RunOracle<BInt<ops::MaxInt>>(window(), shape(), true);
}
TEST_P(WindowSweep, BIntConcatAllRanges) {
  RunOracle<BInt<ops::Concat>>(window(), shape(), true);
}

// --------------------------- FlatFIT -------------------------------------

TEST_P(WindowSweep, FlatFitSumFullWindow) {
  RunOracle<FlatFit<ops::SumInt>>(window(), shape(), false);
}
TEST_P(WindowSweep, FlatFitSumAllRanges) {
  RunOracle<FlatFit<ops::SumInt>>(window(), shape(), true);
}
TEST_P(WindowSweep, FlatFitMaxAllRanges) {
  RunOracle<FlatFit<ops::MaxInt>>(window(), shape(), true);
}
TEST_P(WindowSweep, FlatFitConcatAllRanges) {
  RunOracle<FlatFit<ops::Concat>>(window(), shape(), true);
}

// --------------------------- SlickDeque (Inv) ----------------------------

TEST_P(WindowSweep, SlickDequeInvSumAllRanges) {
  RunOracle<SlickDequeInv<ops::SumInt>>(window(), shape(), true);
}

// --------------------------- SlickDeque (Non-Inv) ------------------------

TEST_P(WindowSweep, SlickDequeNonInvMaxAllRanges) {
  RunOracle<SlickDequeNonInv<ops::MaxInt>>(window(), shape(), true);
}
TEST_P(WindowSweep, SlickDequeNonInvArgMaxAllRanges) {
  RunOracle<SlickDequeNonInv<ops::ArgMax>>(window(), shape(), true);
}

TEST_P(WindowSweep, SlickDequeNonInvQueryMultiMatchesSingles) {
  using Agg = SlickDequeNonInv<ops::MaxInt>;
  Agg agg(window());
  Model<ops::MaxInt> model(window());
  util::SplitMix64 rng(0xabc + window());
  std::vector<std::size_t> ranges_desc;
  for (std::size_t r = window(); r >= 1; --r) ranges_desc.push_back(r);
  std::vector<int64_t> out;
  for (std::size_t step = 0; step < 2 * window() + 20; ++step) {
    const int64_t v = GenInt(shape(), step, rng);
    agg.slide(v);
    model.slide(v);
    out.clear();
    agg.query_multi(ranges_desc, out);
    ASSERT_EQ(out.size(), ranges_desc.size());
    for (std::size_t i = 0; i < ranges_desc.size(); ++i) {
      ASSERT_EQ(out[i], model.query(ranges_desc[i]))
          << "range=" << ranges_desc[i] << " step=" << step;
    }
  }
}

TEST_P(WindowSweep, SlickDequeNonInvQueryMultiRandomSubsets) {
  // The shared walk against N independent query(r) calls, on random sparse
  // descending range sets (with duplicates), interleaved with bulk slides
  // so the walk runs over survivor-mask-built deques too.
  using Agg = SlickDequeNonInv<ops::MaxInt>;
  Agg agg(window());
  Agg single(window());
  util::SplitMix64 rng(0xdef + window());
  std::vector<int64_t> batch;
  std::vector<std::size_t> ranges_desc;
  std::vector<int64_t> out;
  for (std::size_t step = 0; step < 40; ++step) {
    batch.clear();
    const std::size_t b = 1 + rng.NextBounded(window() + 3);
    for (std::size_t i = 0; i < b; ++i) {
      batch.push_back(GenInt(shape(), step * 131 + i, rng));
    }
    agg.BulkSlide(batch.data(), batch.size());
    for (int64_t v : batch) single.slide(v);
    ranges_desc.clear();
    const std::size_t q = 1 + rng.NextBounded(2 * window());
    for (std::size_t i = 0; i < q; ++i) {
      ranges_desc.push_back(1 + rng.NextBounded(window()));
    }
    std::sort(ranges_desc.rbegin(), ranges_desc.rend());
    out.clear();
    agg.query_multi(ranges_desc, out);
    ASSERT_EQ(out.size(), ranges_desc.size());
    for (std::size_t i = 0; i < ranges_desc.size(); ++i) {
      ASSERT_EQ(out[i], single.query(ranges_desc[i]))
          << "range=" << ranges_desc[i] << " step=" << step;
    }
  }
}

// --------------------------- Windowed adapters ---------------------------

TEST_P(WindowSweep, WindowedTwoStacksSum) {
  RunOracle<Windowed<TwoStacks<ops::SumInt>>>(window(), shape(), false);
}
TEST_P(WindowSweep, WindowedTwoStacksMax) {
  RunOracle<Windowed<TwoStacks<ops::MaxInt>>>(window(), shape(), false);
}
TEST_P(WindowSweep, WindowedDabaSum) {
  RunOracle<Windowed<Daba<ops::SumInt>>>(window(), shape(), false);
}
TEST_P(WindowSweep, WindowedDabaMax) {
  RunOracle<Windowed<Daba<ops::MaxInt>>>(window(), shape(), false);
}
TEST_P(WindowSweep, WindowedDabaConcat) {
  RunOracle<Windowed<Daba<ops::Concat>>>(window(), shape(), false);
}

// --------------------------- RangeAggregator -----------------------------

TEST_P(WindowSweep, RangeAggregatorMatchesMaxMinusMin) {
  core::RangeAggregator agg(window());
  Model<ops::Max> max_model(window());
  Model<ops::Min> min_model(window());
  util::SplitMix64 rng(0x7777 + window());
  for (std::size_t step = 0; step < 2 * window() + 20; ++step) {
    const double v = static_cast<double>(GenInt(shape(), step, rng));
    agg.slide(v);
    max_model.slide(v);
    min_model.slide(v);
    ASSERT_EQ(agg.query(), max_model.query(window()) - min_model.query(window()));
    const std::size_t r = 1 + rng.NextBounded(window());
    ASSERT_EQ(agg.query(r), max_model.query(r) - min_model.query(r));
  }
}

TEST_P(WindowSweep, RangeAggregatorQueryMultiMatchesSingles) {
  core::RangeAggregator agg(window());
  util::SplitMix64 rng(0x8888 + window());
  std::vector<std::size_t> ranges_desc;
  std::vector<double> out;
  for (std::size_t step = 0; step < 2 * window() + 20; ++step) {
    agg.slide(static_cast<double>(GenInt(shape(), step, rng)));
    ranges_desc.clear();
    const std::size_t q = 1 + rng.NextBounded(window());
    for (std::size_t i = 0; i < q; ++i) {
      ranges_desc.push_back(1 + rng.NextBounded(window()));
    }
    std::sort(ranges_desc.rbegin(), ranges_desc.rend());
    out.clear();
    agg.query_multi(ranges_desc, out);
    ASSERT_EQ(out.size(), ranges_desc.size());
    for (std::size_t i = 0; i < ranges_desc.size(); ++i) {
      ASSERT_EQ(out[i], agg.query(ranges_desc[i]))
          << "range=" << ranges_desc[i] << " step=" << step;
    }
  }
}

// --------------------------- Targeted edge cases -------------------------

TEST(FixedWindowEdgeTest, WindowOfOneAnswersNewest) {
  NaiveWindow<ops::SumInt> naive(1);
  FlatFat<ops::SumInt> fat(1);
  FlatFit<ops::SumInt> fit(1);
  SlickDequeInv<ops::SumInt> inv(1);
  SlickDequeNonInv<ops::MaxInt> noninv(1);
  for (int64_t v : {5, -3, 12}) {
    naive.slide(v);
    fat.slide(v);
    fit.slide(v);
    inv.slide(v);
    noninv.slide(v);
    EXPECT_EQ(naive.query(), v);
    EXPECT_EQ(fat.query(), v);
    EXPECT_EQ(fit.query(), v);
    EXPECT_EQ(inv.query(), v);
    EXPECT_EQ(noninv.query(), v);
  }
}

TEST(FixedWindowEdgeTest, IdentityPrefillIsVisibleBeforeWarmup) {
  // Before `window` slides have happened the remaining slots still hold the
  // identity, exactly as the paper's Preparation phase prescribes.
  NaiveWindow<ops::SumInt> naive(4);
  naive.slide(10);
  EXPECT_EQ(naive.query(), 10);   // 0+0+0+10
  EXPECT_EQ(naive.query(2), 10);  // 0+10
  EXPECT_EQ(naive.query(1), 10);
}

TEST(FixedWindowEdgeTest, SlickDequeInvUnregisteredRangeIsRejected) {
  SlickDequeInv<ops::SumInt> inv(8, {8, 3});
  EXPECT_TRUE(inv.has_range(3));
  EXPECT_TRUE(inv.has_range(8));
  EXPECT_FALSE(inv.has_range(5));
  EXPECT_DEATH(inv.query(5), "not registered");
}

TEST(FixedWindowEdgeTest, SlickDequeNonInvNodeCountStaysOneOnAscending) {
  // Each new maximum evicts the whole deque: the best-case space regime
  // (§4.2 — "constant (2)").
  SlickDequeNonInv<ops::MaxInt> agg(64);
  for (int64_t v = 0; v < 200; ++v) {
    agg.slide(v);
    EXPECT_EQ(agg.node_count(), 1u);
    EXPECT_EQ(agg.query(), v);
  }
}

TEST(FixedWindowEdgeTest, SlickDequeNonInvDequeFillsOnDescending) {
  // Strictly descending input is the worst case: nothing dominates, the
  // deque grows to the window size (§4.2).
  const std::size_t w = 32;
  SlickDequeNonInv<ops::MaxInt> agg(w);
  for (int64_t v = 0; v < 200; ++v) {
    agg.slide(1000000 - v);
  }
  EXPECT_EQ(agg.node_count(), w);
}

}  // namespace
}  // namespace slick
