// Differential fuzzing: randomized configurations (window sizes, query
// sets, PATs, input shapes) drive every algorithm in lockstep; any
// disagreement is a bug in exactly one of them. Seeds are fixed, so
// failures reproduce; crank --gtest_repeat or the kTrials constants for
// longer campaigns.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/slick_deque_inv.h"
#include "core/slick_deque_noninv.h"
#include "core/windowed.h"
#include "engine/acq_engine.h"
#include "ops/arith.h"
#include "ops/minmax.h"
#include "util/rng.h"
#include "window/b_int.h"
#include "window/daba.h"
#include "window/flat_fat.h"
#include "window/flat_fit.h"
#include "window/naive.h"
#include "window/two_stacks.h"

namespace slick {
namespace {

using plan::Pat;
using plan::QuerySpec;

constexpr int kConfigTrials = 40;

int64_t ShapedValue(util::SplitMix64& rng, int shape, int step) {
  switch (shape) {
    case 0:
      return static_cast<int64_t>(rng.NextBounded(1 << 16)) - (1 << 15);
    case 1:
      return step;
    case 2:
      return -step;
    case 3:
      return static_cast<int64_t>(rng.NextBounded(2));
    default:
      return static_cast<int64_t>(rng.NextBounded(1u << (1 + step % 20)));
  }
}

TEST(DifferentialFuzzTest, AllFixedWindowAlgorithmsAgreeOnRandomConfigs) {
  util::SplitMix64 config_rng(0xF00D);
  for (int trial = 0; trial < kConfigTrials; ++trial) {
    const std::size_t window = 1 + config_rng.NextBounded(140);
    const int shape = static_cast<int>(config_rng.NextBounded(5));
    const uint64_t seed = config_rng.NextU64();

    window::NaiveWindow<ops::SumInt> naive_sum(window);
    window::FlatFat<ops::SumInt> fat_sum(window);
    window::BInt<ops::SumInt> bint_sum(window);
    window::FlatFit<ops::SumInt> fit_sum(window);
    core::Windowed<window::TwoStacks<ops::SumInt>> two_sum(window);
    core::Windowed<window::Daba<ops::SumInt>> daba_sum(window);
    core::SlickDequeInv<ops::SumInt> slick_sum(window);

    window::NaiveWindow<ops::MaxInt> naive_max(window);
    core::Windowed<window::Daba<ops::MaxInt>> daba_max(window);
    core::SlickDequeNonInv<ops::MaxInt> slick_max(window);

    util::SplitMix64 rng(seed);
    const int steps = static_cast<int>(2 * window + 30);
    for (int step = 0; step < steps; ++step) {
      const int64_t v = ShapedValue(rng, shape, step);
      naive_sum.slide(v);
      fat_sum.slide(v);
      bint_sum.slide(v);
      fit_sum.slide(v);
      two_sum.slide(v);
      daba_sum.slide(v);
      slick_sum.slide(v);
      naive_max.slide(v);
      daba_max.slide(v);
      slick_max.slide(v);

      const int64_t expect_sum = naive_sum.query();
      ASSERT_EQ(fat_sum.query(), expect_sum) << "trial " << trial;
      ASSERT_EQ(bint_sum.query(), expect_sum) << "trial " << trial;
      ASSERT_EQ(fit_sum.query(), expect_sum) << "trial " << trial;
      ASSERT_EQ(two_sum.query(), expect_sum) << "trial " << trial;
      ASSERT_EQ(daba_sum.query(), expect_sum) << "trial " << trial;
      ASSERT_EQ(slick_sum.query(), expect_sum) << "trial " << trial;

      const int64_t expect_max = naive_max.query();
      ASSERT_EQ(daba_max.query(), expect_max) << "trial " << trial;
      ASSERT_EQ(slick_max.query(), expect_max) << "trial " << trial;

      // One random sub-range per step across the multi-query-capable four.
      const std::size_t r = 1 + rng.NextBounded(window);
      const int64_t expect_range = naive_sum.query(r);
      ASSERT_EQ(fat_sum.query(r), expect_range) << "trial " << trial;
      ASSERT_EQ(bint_sum.query(r), expect_range) << "trial " << trial;
      ASSERT_EQ(fit_sum.query(r), expect_range) << "trial " << trial;
      ASSERT_EQ(naive_max.query(r), slick_max.query(r)) << "trial " << trial;
    }
  }
}

TEST(DifferentialFuzzTest, EnginesAgreeOnRandomQuerySets) {
  util::SplitMix64 config_rng(0xBEEF);
  for (int trial = 0; trial < kConfigTrials; ++trial) {
    // 1-4 random queries with slides 1..8, ranges 1..80.
    const std::size_t q = 1 + config_rng.NextBounded(4);
    std::vector<QuerySpec> queries;
    for (std::size_t i = 0; i < q; ++i) {
      queries.push_back({1 + config_rng.NextBounded(80),
                         1 + config_rng.NextBounded(8)});
    }
    const Pat pat = config_rng.NextBounded(2) == 0 ? Pat::kPairs : Pat::kPanes;
    const uint64_t seed = config_rng.NextU64();

    engine::AcqEngine<core::SlickDequeInv<ops::SumInt>> slick(queries, pat);
    engine::AcqEngine<window::NaiveWindow<ops::SumInt>> naive(queries, pat);
    engine::AcqEngine<window::FlatFit<ops::SumInt>> fit(queries, pat);

    util::SplitMix64 rng(seed);
    std::vector<std::pair<uint32_t, int64_t>> a, b, c;
    for (int t = 0; t < 400; ++t) {
      const int64_t v = static_cast<int64_t>(rng.NextBounded(1000));
      a.clear();
      b.clear();
      c.clear();
      auto collect = [](auto& out) {
        return [&out](uint32_t qi, int64_t res) { out.emplace_back(qi, res); };
      };
      slick.Push(v, collect(a));
      naive.Push(v, collect(b));
      fit.Push(v, collect(c));
      ASSERT_EQ(a, b) << "trial " << trial << " tuple " << t;
      ASSERT_EQ(a, c) << "trial " << trial << " tuple " << t;
    }
  }
}

}  // namespace
}  // namespace slick
