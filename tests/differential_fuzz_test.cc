// Differential fuzzing: randomized configurations (window sizes, query
// sets, PATs, input shapes) drive every algorithm in lockstep; any
// disagreement is a bug in exactly one of them. Seeds are fixed, so
// failures reproduce; crank --gtest_repeat, the kTrials constants, or the
// SLICK_FUZZ_TRIALS environment variable (nightly CI sets it) for longer
// campaigns.

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/monotonic_deque.h"
#include "core/slick_deque_inv.h"
#include "core/slick_deque_noninv.h"
#include "core/subtract_on_evict.h"
#include "core/windowed.h"
#include "engine/acq_engine.h"
#include "engine/sharded.h"
#include "ops/arith.h"
#include "ops/minmax.h"
#include "ops/string_ops.h"
#include "runtime/parallel_engine.h"
#include "telemetry/snapshot.h"
#include "util/rng.h"
#include "window/aggregator.h"
#include "window/b_int.h"
#include "window/daba.h"
#include "window/flat_fat.h"
#include "window/flat_fit.h"
#include "window/naive.h"
#include "window/two_stacks.h"

namespace slick {
namespace {

using plan::Pat;
using plan::QuerySpec;

constexpr int kConfigTrials = 40;

/// Trial count for a fuzz campaign: `fallback` under the default budget,
/// overridden by SLICK_FUZZ_TRIALS (the CI nightly job sets it much
/// higher; locally export it for soak runs).
int FuzzTrials(int fallback) {
  if (const char* env = std::getenv("SLICK_FUZZ_TRIALS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<int>(v);
  }
  return fallback;
}

int64_t ShapedValue(util::SplitMix64& rng, int shape, int step) {
  switch (shape) {
    case 0:
      return static_cast<int64_t>(rng.NextBounded(1 << 16)) - (1 << 15);
    case 1:
      return step;
    case 2:
      return -step;
    case 3:
      return static_cast<int64_t>(rng.NextBounded(2));
    default:
      return static_cast<int64_t>(rng.NextBounded(1u << (1 + step % 20)));
  }
}

TEST(DifferentialFuzzTest, AllFixedWindowAlgorithmsAgreeOnRandomConfigs) {
  util::SplitMix64 config_rng(0xF00D);
  const int trials = FuzzTrials(kConfigTrials);
  for (int trial = 0; trial < trials; ++trial) {
    const std::size_t window = 1 + config_rng.NextBounded(140);
    const int shape = static_cast<int>(config_rng.NextBounded(5));
    const uint64_t seed = config_rng.NextU64();

    window::NaiveWindow<ops::SumInt> naive_sum(window);
    window::FlatFat<ops::SumInt> fat_sum(window);
    window::BInt<ops::SumInt> bint_sum(window);
    window::FlatFit<ops::SumInt> fit_sum(window);
    core::Windowed<window::TwoStacks<ops::SumInt>> two_sum(window);
    core::Windowed<window::Daba<ops::SumInt>> daba_sum(window);
    core::SlickDequeInv<ops::SumInt> slick_sum(window);

    window::NaiveWindow<ops::MaxInt> naive_max(window);
    core::Windowed<window::Daba<ops::MaxInt>> daba_max(window);
    core::SlickDequeNonInv<ops::MaxInt> slick_max(window);

    util::SplitMix64 rng(seed);
    const int steps = static_cast<int>(2 * window + 30);
    for (int step = 0; step < steps; ++step) {
      const int64_t v = ShapedValue(rng, shape, step);
      naive_sum.slide(v);
      fat_sum.slide(v);
      bint_sum.slide(v);
      fit_sum.slide(v);
      two_sum.slide(v);
      daba_sum.slide(v);
      slick_sum.slide(v);
      naive_max.slide(v);
      daba_max.slide(v);
      slick_max.slide(v);

      const int64_t expect_sum = naive_sum.query();
      ASSERT_EQ(fat_sum.query(), expect_sum) << "trial " << trial;
      ASSERT_EQ(bint_sum.query(), expect_sum) << "trial " << trial;
      ASSERT_EQ(fit_sum.query(), expect_sum) << "trial " << trial;
      ASSERT_EQ(two_sum.query(), expect_sum) << "trial " << trial;
      ASSERT_EQ(daba_sum.query(), expect_sum) << "trial " << trial;
      ASSERT_EQ(slick_sum.query(), expect_sum) << "trial " << trial;

      const int64_t expect_max = naive_max.query();
      ASSERT_EQ(daba_max.query(), expect_max) << "trial " << trial;
      ASSERT_EQ(slick_max.query(), expect_max) << "trial " << trial;

      // One random sub-range per step across the multi-query-capable four.
      const std::size_t r = 1 + rng.NextBounded(window);
      const int64_t expect_range = naive_sum.query(r);
      ASSERT_EQ(fat_sum.query(r), expect_range) << "trial " << trial;
      ASSERT_EQ(bint_sum.query(r), expect_range) << "trial " << trial;
      ASSERT_EQ(fit_sum.query(r), expect_range) << "trial " << trial;
      ASSERT_EQ(naive_max.query(r), slick_max.query(r)) << "trial " << trial;
    }
  }
}

TEST(DifferentialFuzzTest, EnginesAgreeOnRandomQuerySets) {
  util::SplitMix64 config_rng(0xBEEF);
  const int trials = FuzzTrials(kConfigTrials);
  for (int trial = 0; trial < trials; ++trial) {
    // 1-4 random queries with slides 1..8, ranges 1..80.
    const std::size_t q = 1 + config_rng.NextBounded(4);
    std::vector<QuerySpec> queries;
    for (std::size_t i = 0; i < q; ++i) {
      queries.push_back({1 + config_rng.NextBounded(80),
                         1 + config_rng.NextBounded(8)});
    }
    const Pat pat = config_rng.NextBounded(2) == 0 ? Pat::kPairs : Pat::kPanes;
    const uint64_t seed = config_rng.NextU64();

    engine::AcqEngine<core::SlickDequeInv<ops::SumInt>> slick(queries, pat);
    engine::AcqEngine<window::NaiveWindow<ops::SumInt>> naive(queries, pat);
    engine::AcqEngine<window::FlatFit<ops::SumInt>> fit(queries, pat);

    util::SplitMix64 rng(seed);
    std::vector<std::pair<uint32_t, int64_t>> a, b, c;
    for (int t = 0; t < 400; ++t) {
      const int64_t v = static_cast<int64_t>(rng.NextBounded(1000));
      a.clear();
      b.clear();
      c.clear();
      auto collect = [](auto& out) {
        return [&out](uint32_t qi, int64_t res) { out.emplace_back(qi, res); };
      };
      slick.Push(v, collect(a));
      naive.Push(v, collect(b));
      fit.Push(v, collect(c));
      ASSERT_EQ(a, b) << "trial " << trial << " tuple " << t;
      ASSERT_EQ(a, c) << "trial " << trial << " tuple " << t;
    }
  }
}

/// A per-tuple-driven aggregator and a batch-driven twin of the same type.
/// Feed() slides the same span through both — the twin via the bulk
/// dispatch (or, randomly, per-tuple too, so member fast paths interleave
/// with the scalar path mid-stream); any divergence is a bulk-path bug.
template <typename Agg>
struct BulkTwin {
  Agg single, bulk;

  template <typename... Args>
  explicit BulkTwin(Args&&... args) : single(args...), bulk(args...) {}

  void Feed(const typename Agg::value_type* src, std::size_t n,
            bool use_bulk) {
    for (std::size_t i = 0; i < n; ++i) single.slide(src[i]);
    if (use_bulk) {
      window::BulkSlide(bulk, src, n);
    } else {
      for (std::size_t i = 0; i < n; ++i) bulk.slide(src[i]);
    }
  }
};

// Batch ingestion differential mode (DESIGN.md §11): random batch sizes —
// including n >= window, which exercises the whole-window rebuild paths —
// against a per-tuple twin of every fixed-window aggregator, checking the
// full-window answer and sub-range answers after every batch.
TEST(DifferentialFuzzTest, BatchSlideMatchesPerTupleSlide) {
  util::SplitMix64 config_rng(0xBA7C);
  const int trials = FuzzTrials(kConfigTrials);
  for (int trial = 0; trial < trials; ++trial) {
    const std::size_t window = 1 + config_rng.NextBounded(120);
    const int shape = static_cast<int>(config_rng.NextBounded(5));
    const uint64_t seed = config_rng.NextU64();

    BulkTwin<window::NaiveWindow<ops::SumInt>> naive_sum(window);
    BulkTwin<window::FlatFat<ops::SumInt>> fat_sum(window);
    BulkTwin<window::FlatFit<ops::SumInt>> fit_sum(window);
    BulkTwin<core::Windowed<window::TwoStacks<ops::SumInt>>> two_sum(window);
    BulkTwin<core::Windowed<window::Daba<ops::SumInt>>> daba_sum(window);
    BulkTwin<core::Windowed<core::SubtractOnEvict<ops::SumInt>>> sub_sum(
        window);
    const std::vector<std::size_t> ranges = {1, 1 + window / 3, window};
    BulkTwin<core::SlickDequeInv<ops::SumInt>> slick_sum(window, ranges);

    BulkTwin<window::NaiveWindow<ops::MaxInt>> naive_max(window);
    BulkTwin<window::FlatFat<ops::MaxInt>> fat_max(window);
    BulkTwin<core::SlickDequeNonInv<ops::MaxInt>> slick_max(window);

    util::SplitMix64 rng(seed);
    int step = 0;
    for (int round = 0; round < 12; ++round) {
      const std::size_t n = 1 + rng.NextBounded(3 * window);
      std::vector<int64_t> batch(n);
      for (auto& v : batch) v = ShapedValue(rng, shape, step++);
      const bool use_bulk = rng.NextBounded(4) != 0;  // mostly bulk

      naive_sum.Feed(batch.data(), n, use_bulk);
      fat_sum.Feed(batch.data(), n, use_bulk);
      fit_sum.Feed(batch.data(), n, use_bulk);
      two_sum.Feed(batch.data(), n, use_bulk);
      daba_sum.Feed(batch.data(), n, use_bulk);
      sub_sum.Feed(batch.data(), n, use_bulk);
      slick_sum.Feed(batch.data(), n, use_bulk);
      naive_max.Feed(batch.data(), n, use_bulk);
      fat_max.Feed(batch.data(), n, use_bulk);
      slick_max.Feed(batch.data(), n, use_bulk);

      const int64_t expect_sum = naive_sum.single.query();
      ASSERT_EQ(naive_sum.bulk.query(), expect_sum) << "trial " << trial;
      ASSERT_EQ(fat_sum.bulk.query(), expect_sum) << "trial " << trial;
      ASSERT_EQ(fit_sum.bulk.query(), expect_sum) << "trial " << trial;
      ASSERT_EQ(two_sum.bulk.query(), expect_sum) << "trial " << trial;
      ASSERT_EQ(daba_sum.bulk.query(), expect_sum) << "trial " << trial;
      ASSERT_EQ(sub_sum.bulk.query(), expect_sum) << "trial " << trial;
      ASSERT_EQ(slick_sum.bulk.query(), expect_sum) << "trial " << trial;

      const int64_t expect_max = naive_max.single.query();
      ASSERT_EQ(naive_max.bulk.query(), expect_max) << "trial " << trial;
      ASSERT_EQ(fat_max.bulk.query(), expect_max) << "trial " << trial;
      ASSERT_EQ(slick_max.bulk.query(), expect_max) << "trial " << trial;

      // Sub-range answers: a random range on the arbitrary-range four, and
      // the registered ranges on SlickDeque (Inv).
      const std::size_t r = 1 + rng.NextBounded(window);
      const int64_t expect_range = naive_sum.single.query(r);
      ASSERT_EQ(naive_sum.bulk.query(r), expect_range) << "trial " << trial;
      ASSERT_EQ(fat_sum.bulk.query(r), expect_range) << "trial " << trial;
      ASSERT_EQ(fit_sum.bulk.query(r), expect_range) << "trial " << trial;
      ASSERT_EQ(slick_max.bulk.query(r), naive_max.single.query(r))
          << "trial " << trial << " r=" << r;
      for (std::size_t reg : ranges) {
        ASSERT_EQ(slick_sum.bulk.query(reg), naive_sum.single.query(reg))
            << "trial " << trial << " range " << reg;
      }
    }
  }
}

/// FIFO counterpart of BulkTwin: random interleavings of bulk and
/// per-tuple insert/evict against a per-tuple twin.
template <typename Agg, typename Gen>
void FifoBatchVsSingle(uint64_t master_seed, Gen gen) {
  util::SplitMix64 config_rng(master_seed);
  const int trials = FuzzTrials(kConfigTrials);
  for (int trial = 0; trial < trials; ++trial) {
    Agg single, bulk;
    util::SplitMix64 rng(config_rng.NextU64());
    std::size_t live = 0;
    for (int round = 0; round < 40; ++round) {
      const std::size_t n = 1 + rng.NextBounded(24);
      std::vector<typename Agg::value_type> batch(n);
      for (auto& v : batch) v = gen(rng);
      for (const auto& v : batch) single.insert(v);
      if (rng.NextBounded(4) != 0) {
        window::BulkInsert(bulk, batch.data(), n);
      } else {
        for (const auto& v : batch) bulk.insert(v);
      }
      live += n;

      const std::size_t k = rng.NextBounded(live + 1);  // may empty it
      for (std::size_t i = 0; i < k; ++i) single.evict();
      if (rng.NextBounded(4) != 0) {
        window::BulkEvict(bulk, k);
      } else {
        for (std::size_t i = 0; i < k; ++i) bulk.evict();
      }
      live -= k;

      ASSERT_EQ(bulk.size(), single.size()) << "trial " << trial;
      if (live > 0) {
        ASSERT_EQ(bulk.query(), single.query())
            << "trial " << trial << " round " << round;
      }
    }
  }
}

TEST(DifferentialFuzzTest, FifoBatchMatchesPerTupleMonotonicDequeMax) {
  FifoBatchVsSingle<core::MonotonicDeque<ops::MaxInt>>(
      0xCAFE, [](util::SplitMix64& rng) {
        return static_cast<int64_t>(rng.NextBounded(1 << 12)) - (1 << 11);
      });
}

TEST(DifferentialFuzzTest, FifoBatchMatchesPerTupleMonotonicDequeArgMax) {
  // ArgMax's tie-keeps-earlier rule makes identity of the winner (not just
  // its key) sensitive to staircase mistakes; narrow key range forces ties.
  FifoBatchVsSingle<core::MonotonicDeque<ops::ArgMax>>(
      0xACED, [id = uint64_t{0}](util::SplitMix64& rng) mutable {
        return ops::ArgSample{static_cast<double>(rng.NextBounded(8)), id++};
      });
}

TEST(DifferentialFuzzTest, FifoBatchMatchesPerTupleMonotonicDequeAlphaMax) {
  FifoBatchVsSingle<core::MonotonicDeque<ops::AlphaMax>>(
      0xF1FA, [](util::SplitMix64& rng) {
        return std::string(1, static_cast<char>('a' + rng.NextBounded(6)));
      });
}

TEST(DifferentialFuzzTest, FifoBatchMatchesPerTupleSubtractOnEvict) {
  FifoBatchVsSingle<core::SubtractOnEvict<ops::SumInt>>(
      0x5AFE, [](util::SplitMix64& rng) {
        return static_cast<int64_t>(rng.NextBounded(1 << 16)) - (1 << 15);
      });
}

TEST(DifferentialFuzzTest, FifoBatchMatchesPerTupleTwoStacksSum) {
  FifoBatchVsSingle<window::TwoStacks<ops::SumInt>>(
      0x257C, [](util::SplitMix64& rng) {
        return static_cast<int64_t>(rng.NextBounded(1 << 16)) - (1 << 15);
      });
}

TEST(DifferentialFuzzTest, FifoBatchMatchesPerTupleTwoStacksConcat) {
  // Concat is the order-correctness probe: any bulk path that reorders
  // combines produces a visibly different string.
  FifoBatchVsSingle<window::TwoStacks<ops::Concat>>(
      0xC0CA, [](util::SplitMix64& rng) {
        return std::string(1, static_cast<char>('a' + rng.NextBounded(26)));
      });
}

TEST(DifferentialFuzzTest, FifoBatchMatchesPerTupleDabaMax) {
  FifoBatchVsSingle<window::Daba<ops::MaxInt>>(
      0xDABA, [](util::SplitMix64& rng) {
        return static_cast<int64_t>(rng.NextBounded(1 << 12)) - (1 << 11);
      });
}

TEST(DifferentialFuzzTest, FifoBatchMatchesPerTupleDabaConcat) {
  FifoBatchVsSingle<window::Daba<ops::Concat>>(
      0xDAB2, [](util::SplitMix64& rng) {
        return std::string(1, static_cast<char>('a' + rng.NextBounded(26)));
      });
}

// Randomized configurations for the multi-threaded runtime: shard counts,
// ring capacities, batch sizes and both backpressure modes, checked for
// (a) answer agreement with the single-threaded RoundRobinSharded reference
// at slide barriers (lossless mode) and (b) the telemetry conservation
// identities at every epoch snapshot:
//   live (router thread):   fed == admitted + dropped + staged,
//                           tuples_out <= tuples_in        (per shard)
//   quiescent (post-query): tuples_in == tuples_out, in_flight == 0.
TEST(DifferentialFuzzTest, ParallelEngineTelemetryConservationOnRandomConfigs) {
  using Agg = core::SlickDequeInv<ops::SumInt>;
  util::SplitMix64 config_rng(0xD15C);
  const int trials = FuzzTrials(12);
  for (int trial = 0; trial < trials; ++trial) {
    const std::size_t shards = 1 + config_rng.NextBounded(8);
    const std::size_t shard_window = 1 + config_rng.NextBounded(48);
    const std::size_t window = shards * shard_window;
    runtime::ParallelShardedEngine<Agg>::Options opt;
    opt.ring_capacity = std::size_t{1} << (2 + config_rng.NextBounded(7));
    opt.batch = 1 + config_rng.NextBounded(48);
    const bool drop = config_rng.NextBounded(4) == 0;  // mostly lossless
    opt.backpressure = drop ? runtime::Backpressure::kDropNewest
                            : runtime::Backpressure::kBlock;
    const uint64_t seed = config_rng.NextU64();
    const int epochs = 2 + static_cast<int>(config_rng.NextBounded(4));
    // Per-epoch tuple count is a multiple of `shards` so every epoch cut is
    // a slide barrier (where the N-way combine is exact, see
    // parallel_engine.h).
    const uint64_t per_epoch =
        shards * (shard_window + 1 + config_rng.NextBounded(200));

    runtime::ParallelShardedEngine<Agg> par(window, shards, opt);
    engine::RoundRobinSharded<Agg> ref(window, shards);

    util::SplitMix64 rng(seed);
    uint64_t fed = 0;
    for (int e = 0; e < epochs; ++e) {
      for (uint64_t i = 0; i < per_epoch; ++i) {
        const auto v = static_cast<int64_t>(rng.NextBounded(1 << 20)) -
                       (1 << 19);
        par.push(v);
        ref.slide(v);
        ++fed;
      }
      par.flush();

      // Live cut: workers may still be draining. Router-side admission
      // accounting is exact (the test thread IS the router); worker-side
      // counters may only trail admission.
      const telemetry::RuntimeSnapshot live = par.snapshot();
      ASSERT_EQ(live.total_in() + live.total_dropped() + live.total_staged(),
                fed)
          << "trial " << trial << " epoch " << e;
      ASSERT_EQ(live.total_staged(), 0u) << "after flush, trial " << trial;
      if (!drop) {
        ASSERT_EQ(live.total_dropped(), 0u) << "trial " << trial;
      }
      for (std::size_t s = 0; s < live.shards.size(); ++s) {
        const telemetry::ShardSnapshot& sh = live.shards[s];
        ASSERT_LE(sh.tuples_out, sh.tuples_in)
            << "trial " << trial << " shard " << s;
        ASSERT_LE(sh.in_flight, opt.ring_capacity)
            << "trial " << trial << " shard " << s;
        ASSERT_LE(sh.ring_highwater, opt.ring_capacity)
            << "trial " << trial << " shard " << s;
        ASSERT_EQ(sh.watermark_lag, sh.tuples_in - sh.tuples_out)
            << "trial " << trial << " shard " << s;
      }

      // Quiescent cut: query() awaits the epoch, so everything admitted has
      // been slid and the rings are empty. Under kDropNewest, shedding can
      // legitimately starve a shard's warm-up (the scheduler decides how
      // fast workers drain), so only query once every shard actually
      // admitted a full window.
      bool warm = true;
      for (const telemetry::ShardSnapshot& sh : live.shards) {
        if (sh.tuples_in < shard_window) warm = false;
      }
      if (!drop) {
        ASSERT_TRUE(warm) << "trial " << trial << " epoch " << e;
        ASSERT_TRUE(par.ready()) << "trial " << trial << " epoch " << e;
      }
      if (!warm) continue;
      const int64_t got = par.query();
      const telemetry::RuntimeSnapshot quiet = par.snapshot();
      ASSERT_EQ(quiet.total_in(), quiet.total_out())
          << "trial " << trial << " epoch " << e;
      ASSERT_EQ(quiet.total_in_flight(), 0u)
          << "trial " << trial << " epoch " << e;
      ASSERT_EQ(quiet.total_in() + quiet.total_dropped(), fed)
          << "trial " << trial << " epoch " << e;
      // Every drained batch was timed: the merged histogram's count equals
      // the total batch count.
      uint64_t batches = 0;
      for (const telemetry::ShardSnapshot& sh : quiet.shards) {
        batches += sh.batches;
      }
      ASSERT_EQ(quiet.batch_latency_ns.total(), batches)
          << "trial " << trial << " epoch " << e;

      // Answer agreement with the single-threaded reference (lossless mode
      // only — shedding legitimately changes per-shard suffixes).
      if (!drop) {
        ASSERT_EQ(got, ref.query()) << "trial " << trial << " epoch " << e
                                    << " shards=" << shards
                                    << " window=" << window;
      }
    }

    par.stop();
    const telemetry::RuntimeSnapshot fin = par.snapshot();
    ASSERT_EQ(fin.total_in(), fin.total_out()) << "trial " << trial;
    ASSERT_EQ(fin.total_in_flight(), 0u) << "trial " << trial;
    ASSERT_EQ(fin.total_in() + fin.total_dropped(), fed) << "trial " << trial;
  }
}

}  // namespace
}  // namespace slick
