// Differential fuzzing: randomized configurations (window sizes, query
// sets, PATs, input shapes) drive every algorithm in lockstep; any
// disagreement is a bug in exactly one of them. Seeds are fixed, so
// failures reproduce; crank --gtest_repeat, the kTrials constants, or the
// SLICK_FUZZ_TRIALS environment variable (nightly CI sets it) for longer
// campaigns.

#include <cstdint>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "core/slick_deque_inv.h"
#include "core/slick_deque_noninv.h"
#include "core/windowed.h"
#include "engine/acq_engine.h"
#include "engine/sharded.h"
#include "ops/arith.h"
#include "ops/minmax.h"
#include "runtime/parallel_engine.h"
#include "telemetry/snapshot.h"
#include "util/rng.h"
#include "window/b_int.h"
#include "window/daba.h"
#include "window/flat_fat.h"
#include "window/flat_fit.h"
#include "window/naive.h"
#include "window/two_stacks.h"

namespace slick {
namespace {

using plan::Pat;
using plan::QuerySpec;

constexpr int kConfigTrials = 40;

/// Trial count for a fuzz campaign: `fallback` under the default budget,
/// overridden by SLICK_FUZZ_TRIALS (the CI nightly job sets it much
/// higher; locally export it for soak runs).
int FuzzTrials(int fallback) {
  if (const char* env = std::getenv("SLICK_FUZZ_TRIALS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<int>(v);
  }
  return fallback;
}

int64_t ShapedValue(util::SplitMix64& rng, int shape, int step) {
  switch (shape) {
    case 0:
      return static_cast<int64_t>(rng.NextBounded(1 << 16)) - (1 << 15);
    case 1:
      return step;
    case 2:
      return -step;
    case 3:
      return static_cast<int64_t>(rng.NextBounded(2));
    default:
      return static_cast<int64_t>(rng.NextBounded(1u << (1 + step % 20)));
  }
}

TEST(DifferentialFuzzTest, AllFixedWindowAlgorithmsAgreeOnRandomConfigs) {
  util::SplitMix64 config_rng(0xF00D);
  const int trials = FuzzTrials(kConfigTrials);
  for (int trial = 0; trial < trials; ++trial) {
    const std::size_t window = 1 + config_rng.NextBounded(140);
    const int shape = static_cast<int>(config_rng.NextBounded(5));
    const uint64_t seed = config_rng.NextU64();

    window::NaiveWindow<ops::SumInt> naive_sum(window);
    window::FlatFat<ops::SumInt> fat_sum(window);
    window::BInt<ops::SumInt> bint_sum(window);
    window::FlatFit<ops::SumInt> fit_sum(window);
    core::Windowed<window::TwoStacks<ops::SumInt>> two_sum(window);
    core::Windowed<window::Daba<ops::SumInt>> daba_sum(window);
    core::SlickDequeInv<ops::SumInt> slick_sum(window);

    window::NaiveWindow<ops::MaxInt> naive_max(window);
    core::Windowed<window::Daba<ops::MaxInt>> daba_max(window);
    core::SlickDequeNonInv<ops::MaxInt> slick_max(window);

    util::SplitMix64 rng(seed);
    const int steps = static_cast<int>(2 * window + 30);
    for (int step = 0; step < steps; ++step) {
      const int64_t v = ShapedValue(rng, shape, step);
      naive_sum.slide(v);
      fat_sum.slide(v);
      bint_sum.slide(v);
      fit_sum.slide(v);
      two_sum.slide(v);
      daba_sum.slide(v);
      slick_sum.slide(v);
      naive_max.slide(v);
      daba_max.slide(v);
      slick_max.slide(v);

      const int64_t expect_sum = naive_sum.query();
      ASSERT_EQ(fat_sum.query(), expect_sum) << "trial " << trial;
      ASSERT_EQ(bint_sum.query(), expect_sum) << "trial " << trial;
      ASSERT_EQ(fit_sum.query(), expect_sum) << "trial " << trial;
      ASSERT_EQ(two_sum.query(), expect_sum) << "trial " << trial;
      ASSERT_EQ(daba_sum.query(), expect_sum) << "trial " << trial;
      ASSERT_EQ(slick_sum.query(), expect_sum) << "trial " << trial;

      const int64_t expect_max = naive_max.query();
      ASSERT_EQ(daba_max.query(), expect_max) << "trial " << trial;
      ASSERT_EQ(slick_max.query(), expect_max) << "trial " << trial;

      // One random sub-range per step across the multi-query-capable four.
      const std::size_t r = 1 + rng.NextBounded(window);
      const int64_t expect_range = naive_sum.query(r);
      ASSERT_EQ(fat_sum.query(r), expect_range) << "trial " << trial;
      ASSERT_EQ(bint_sum.query(r), expect_range) << "trial " << trial;
      ASSERT_EQ(fit_sum.query(r), expect_range) << "trial " << trial;
      ASSERT_EQ(naive_max.query(r), slick_max.query(r)) << "trial " << trial;
    }
  }
}

TEST(DifferentialFuzzTest, EnginesAgreeOnRandomQuerySets) {
  util::SplitMix64 config_rng(0xBEEF);
  const int trials = FuzzTrials(kConfigTrials);
  for (int trial = 0; trial < trials; ++trial) {
    // 1-4 random queries with slides 1..8, ranges 1..80.
    const std::size_t q = 1 + config_rng.NextBounded(4);
    std::vector<QuerySpec> queries;
    for (std::size_t i = 0; i < q; ++i) {
      queries.push_back({1 + config_rng.NextBounded(80),
                         1 + config_rng.NextBounded(8)});
    }
    const Pat pat = config_rng.NextBounded(2) == 0 ? Pat::kPairs : Pat::kPanes;
    const uint64_t seed = config_rng.NextU64();

    engine::AcqEngine<core::SlickDequeInv<ops::SumInt>> slick(queries, pat);
    engine::AcqEngine<window::NaiveWindow<ops::SumInt>> naive(queries, pat);
    engine::AcqEngine<window::FlatFit<ops::SumInt>> fit(queries, pat);

    util::SplitMix64 rng(seed);
    std::vector<std::pair<uint32_t, int64_t>> a, b, c;
    for (int t = 0; t < 400; ++t) {
      const int64_t v = static_cast<int64_t>(rng.NextBounded(1000));
      a.clear();
      b.clear();
      c.clear();
      auto collect = [](auto& out) {
        return [&out](uint32_t qi, int64_t res) { out.emplace_back(qi, res); };
      };
      slick.Push(v, collect(a));
      naive.Push(v, collect(b));
      fit.Push(v, collect(c));
      ASSERT_EQ(a, b) << "trial " << trial << " tuple " << t;
      ASSERT_EQ(a, c) << "trial " << trial << " tuple " << t;
    }
  }
}

// Randomized configurations for the multi-threaded runtime: shard counts,
// ring capacities, batch sizes and both backpressure modes, checked for
// (a) answer agreement with the single-threaded RoundRobinSharded reference
// at slide barriers (lossless mode) and (b) the telemetry conservation
// identities at every epoch snapshot:
//   live (router thread):   fed == admitted + dropped + staged,
//                           tuples_out <= tuples_in        (per shard)
//   quiescent (post-query): tuples_in == tuples_out, in_flight == 0.
TEST(DifferentialFuzzTest, ParallelEngineTelemetryConservationOnRandomConfigs) {
  using Agg = core::SlickDequeInv<ops::SumInt>;
  util::SplitMix64 config_rng(0xD15C);
  const int trials = FuzzTrials(12);
  for (int trial = 0; trial < trials; ++trial) {
    const std::size_t shards = 1 + config_rng.NextBounded(8);
    const std::size_t shard_window = 1 + config_rng.NextBounded(48);
    const std::size_t window = shards * shard_window;
    runtime::ParallelShardedEngine<Agg>::Options opt;
    opt.ring_capacity = std::size_t{1} << (2 + config_rng.NextBounded(7));
    opt.batch = 1 + config_rng.NextBounded(48);
    const bool drop = config_rng.NextBounded(4) == 0;  // mostly lossless
    opt.backpressure = drop ? runtime::Backpressure::kDropNewest
                            : runtime::Backpressure::kBlock;
    const uint64_t seed = config_rng.NextU64();
    const int epochs = 2 + static_cast<int>(config_rng.NextBounded(4));
    // Per-epoch tuple count is a multiple of `shards` so every epoch cut is
    // a slide barrier (where the N-way combine is exact, see
    // parallel_engine.h).
    const uint64_t per_epoch =
        shards * (shard_window + 1 + config_rng.NextBounded(200));

    runtime::ParallelShardedEngine<Agg> par(window, shards, opt);
    engine::RoundRobinSharded<Agg> ref(window, shards);

    util::SplitMix64 rng(seed);
    uint64_t fed = 0;
    for (int e = 0; e < epochs; ++e) {
      for (uint64_t i = 0; i < per_epoch; ++i) {
        const auto v = static_cast<int64_t>(rng.NextBounded(1 << 20)) -
                       (1 << 19);
        par.push(v);
        ref.slide(v);
        ++fed;
      }
      par.flush();

      // Live cut: workers may still be draining. Router-side admission
      // accounting is exact (the test thread IS the router); worker-side
      // counters may only trail admission.
      const telemetry::RuntimeSnapshot live = par.snapshot();
      ASSERT_EQ(live.total_in() + live.total_dropped() + live.total_staged(),
                fed)
          << "trial " << trial << " epoch " << e;
      ASSERT_EQ(live.total_staged(), 0u) << "after flush, trial " << trial;
      if (!drop) {
        ASSERT_EQ(live.total_dropped(), 0u) << "trial " << trial;
      }
      for (std::size_t s = 0; s < live.shards.size(); ++s) {
        const telemetry::ShardSnapshot& sh = live.shards[s];
        ASSERT_LE(sh.tuples_out, sh.tuples_in)
            << "trial " << trial << " shard " << s;
        ASSERT_LE(sh.in_flight, opt.ring_capacity)
            << "trial " << trial << " shard " << s;
        ASSERT_LE(sh.ring_highwater, opt.ring_capacity)
            << "trial " << trial << " shard " << s;
        ASSERT_EQ(sh.watermark_lag, sh.tuples_in - sh.tuples_out)
            << "trial " << trial << " shard " << s;
      }

      // Quiescent cut: query() awaits the epoch, so everything admitted has
      // been slid and the rings are empty. Under kDropNewest, shedding can
      // legitimately starve a shard's warm-up (the scheduler decides how
      // fast workers drain), so only query once every shard actually
      // admitted a full window.
      bool warm = true;
      for (const telemetry::ShardSnapshot& sh : live.shards) {
        if (sh.tuples_in < shard_window) warm = false;
      }
      if (!drop) {
        ASSERT_TRUE(warm) << "trial " << trial << " epoch " << e;
        ASSERT_TRUE(par.ready()) << "trial " << trial << " epoch " << e;
      }
      if (!warm) continue;
      const int64_t got = par.query();
      const telemetry::RuntimeSnapshot quiet = par.snapshot();
      ASSERT_EQ(quiet.total_in(), quiet.total_out())
          << "trial " << trial << " epoch " << e;
      ASSERT_EQ(quiet.total_in_flight(), 0u)
          << "trial " << trial << " epoch " << e;
      ASSERT_EQ(quiet.total_in() + quiet.total_dropped(), fed)
          << "trial " << trial << " epoch " << e;
      // Every drained batch was timed: the merged histogram's count equals
      // the total batch count.
      uint64_t batches = 0;
      for (const telemetry::ShardSnapshot& sh : quiet.shards) {
        batches += sh.batches;
      }
      ASSERT_EQ(quiet.batch_latency_ns.total(), batches)
          << "trial " << trial << " epoch " << e;

      // Answer agreement with the single-threaded reference (lossless mode
      // only — shedding legitimately changes per-shard suffixes).
      if (!drop) {
        ASSERT_EQ(got, ref.query()) << "trial " << trial << " epoch " << e
                                    << " shards=" << shards
                                    << " window=" << window;
      }
    }

    par.stop();
    const telemetry::RuntimeSnapshot fin = par.snapshot();
    ASSERT_EQ(fin.total_in(), fin.total_out()) << "trial " << trial;
    ASSERT_EQ(fin.total_in_flight(), 0u) << "trial " << trial;
    ASSERT_EQ(fin.total_in() + fin.total_dropped(), fed) << "trial " << trial;
  }
}

}  // namespace
}  // namespace slick
