#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "util/math.h"
#include "util/memory.h"
#include "util/rng.h"
#include "util/stats.h"

namespace slick::util {
namespace {

TEST(MathTest, IsPowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(1ULL << 40));
  EXPECT_FALSE(IsPowerOfTwo((1ULL << 40) + 1));
}

TEST(MathTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(5), 8u);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024u);
  EXPECT_EQ(NextPowerOfTwo(1025), 2048u);
}

TEST(MathTest, FloorCeilLog2) {
  EXPECT_EQ(FloorLog2(1), 0u);
  EXPECT_EQ(FloorLog2(2), 1u);
  EXPECT_EQ(FloorLog2(3), 1u);
  EXPECT_EQ(FloorLog2(4), 2u);
  EXPECT_EQ(FloorLog2(1023), 9u);
  EXPECT_EQ(CeilLog2(1), 0u);
  EXPECT_EQ(CeilLog2(2), 1u);
  EXPECT_EQ(CeilLog2(3), 2u);
  EXPECT_EQ(CeilLog2(1024), 10u);
  EXPECT_EQ(CeilLog2(1025), 11u);
}

TEST(MathTest, LcmAll) {
  const uint64_t a[] = {2, 3, 4};
  EXPECT_EQ(LcmAll(a, 3), 12u);
  const uint64_t b[] = {7};
  EXPECT_EQ(LcmAll(b, 1), 7u);
  const uint64_t c[] = {6, 10, 15};
  EXPECT_EQ(LcmAll(c, 3), 30u);
}

TEST(RngTest, DeterministicAndSpread) {
  SplitMix64 rng1(42);
  SplitMix64 rng2(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng1.NextU64(), rng2.NextU64());

  SplitMix64 rng(7);
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(RngTest, BoundedStaysInBound) {
  SplitMix64 rng(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(StatsTest, PercentileSorted) {
  std::vector<uint64_t> v = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(PercentileSorted(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(v, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(v, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(v, 0.25), 20.0);
  std::vector<uint64_t> one = {7};
  EXPECT_DOUBLE_EQ(PercentileSorted(one, 0.9), 7.0);
}

TEST(StatsTest, SummarizeBasic) {
  std::vector<uint64_t> v = {5, 1, 3, 2, 4};
  const LatencySummary s = Summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min_ns, 1.0);
  EXPECT_DOUBLE_EQ(s.max_ns, 5.0);
  EXPECT_DOUBLE_EQ(s.median_ns, 3.0);
  EXPECT_DOUBLE_EQ(s.avg_ns, 3.0);
}

TEST(StatsTest, SummarizeDropsTopOutliers) {
  std::vector<uint64_t> v(1000, 10);
  v.push_back(1000000);  // one outlier among 1001 samples
  const LatencySummary s = Summarize(v, 0.001);
  EXPECT_EQ(s.count, 1000u);
  EXPECT_DOUBLE_EQ(s.max_ns, 10.0);
}

TEST(StatsTest, SummarizeEmpty) {
  std::vector<uint64_t> v;
  const LatencySummary s = Summarize(v);
  EXPECT_EQ(s.count, 0u);
  // Every field of an empty summary is zero — no NaNs, no stale values.
  EXPECT_DOUBLE_EQ(s.min_ns, 0.0);
  EXPECT_DOUBLE_EQ(s.p25_ns, 0.0);
  EXPECT_DOUBLE_EQ(s.median_ns, 0.0);
  EXPECT_DOUBLE_EQ(s.p75_ns, 0.0);
  EXPECT_DOUBLE_EQ(s.p99_ns, 0.0);
  EXPECT_DOUBLE_EQ(s.p999_ns, 0.0);
  EXPECT_DOUBLE_EQ(s.max_ns, 0.0);
  EXPECT_DOUBLE_EQ(s.avg_ns, 0.0);
}

TEST(StatsTest, SummarizeEmptyWithDropFraction) {
  // drop_top on an empty input must not underflow the kept-count.
  std::vector<uint64_t> v;
  const LatencySummary s = Summarize(v, 0.5);
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.max_ns, 0.0);
}

TEST(StatsTest, SummarizeSingleSample) {
  // Regression: a single sample is every percentile, and the summary's
  // count is 1 — it must not report zeros or divide by zero.
  std::vector<uint64_t> v = {37};
  const LatencySummary s = Summarize(v);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min_ns, 37.0);
  EXPECT_DOUBLE_EQ(s.p25_ns, 37.0);
  EXPECT_DOUBLE_EQ(s.median_ns, 37.0);
  EXPECT_DOUBLE_EQ(s.p75_ns, 37.0);
  EXPECT_DOUBLE_EQ(s.p99_ns, 37.0);
  EXPECT_DOUBLE_EQ(s.p999_ns, 37.0);
  EXPECT_DOUBLE_EQ(s.max_ns, 37.0);
  EXPECT_DOUBLE_EQ(s.avg_ns, 37.0);
}

TEST(StatsTest, SummarizeSingleSampleNeverDroppedAsOutlier) {
  // Regression: even an aggressive drop fraction keeps the last sample —
  // the outlier trim must never empty a nonempty input.
  std::vector<uint64_t> v = {99};
  const LatencySummary s = Summarize(v, 0.9);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min_ns, 99.0);
  EXPECT_DOUBLE_EQ(s.max_ns, 99.0);
}

TEST(StatsTest, RecorderRoundTrip) {
  LatencyRecorder rec(8);
  for (uint64_t x : {4u, 8u, 2u}) rec.Record(x);
  const LatencySummary s = rec.Finish();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min_ns, 2.0);
  EXPECT_TRUE(rec.samples().empty());
}

TEST(MemoryTest, RssReadable) {
  // Smoke check: on Linux both values should be nonzero and peak >= current.
  const uint64_t peak = PeakRssBytes();
  const uint64_t cur = CurrentRssBytes();
  EXPECT_GT(peak, 0u);
  EXPECT_GT(cur, 0u);
  EXPECT_GE(peak, cur / 2);  // loose: RSS can shrink below the peak
}

}  // namespace
}  // namespace slick::util
