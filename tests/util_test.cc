#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/frame.h"
#include "util/math.h"
#include "util/memory.h"
#include "util/rng.h"
#include "util/serde.h"
#include "util/stats.h"

namespace slick::util {
namespace {

TEST(MathTest, IsPowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(1ULL << 40));
  EXPECT_FALSE(IsPowerOfTwo((1ULL << 40) + 1));
}

TEST(MathTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(5), 8u);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024u);
  EXPECT_EQ(NextPowerOfTwo(1025), 2048u);
}

TEST(MathTest, FloorCeilLog2) {
  EXPECT_EQ(FloorLog2(1), 0u);
  EXPECT_EQ(FloorLog2(2), 1u);
  EXPECT_EQ(FloorLog2(3), 1u);
  EXPECT_EQ(FloorLog2(4), 2u);
  EXPECT_EQ(FloorLog2(1023), 9u);
  EXPECT_EQ(CeilLog2(1), 0u);
  EXPECT_EQ(CeilLog2(2), 1u);
  EXPECT_EQ(CeilLog2(3), 2u);
  EXPECT_EQ(CeilLog2(1024), 10u);
  EXPECT_EQ(CeilLog2(1025), 11u);
}

TEST(MathTest, LcmAll) {
  const uint64_t a[] = {2, 3, 4};
  EXPECT_EQ(LcmAll(a, 3), 12u);
  const uint64_t b[] = {7};
  EXPECT_EQ(LcmAll(b, 1), 7u);
  const uint64_t c[] = {6, 10, 15};
  EXPECT_EQ(LcmAll(c, 3), 30u);
}

TEST(RngTest, DeterministicAndSpread) {
  SplitMix64 rng1(42);
  SplitMix64 rng2(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng1.NextU64(), rng2.NextU64());

  SplitMix64 rng(7);
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(RngTest, BoundedStaysInBound) {
  SplitMix64 rng(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(StatsTest, PercentileSorted) {
  std::vector<uint64_t> v = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(PercentileSorted(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(v, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(v, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(v, 0.25), 20.0);
  std::vector<uint64_t> one = {7};
  EXPECT_DOUBLE_EQ(PercentileSorted(one, 0.9), 7.0);
}

TEST(StatsTest, SummarizeBasic) {
  std::vector<uint64_t> v = {5, 1, 3, 2, 4};
  const LatencySummary s = Summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min_ns, 1.0);
  EXPECT_DOUBLE_EQ(s.max_ns, 5.0);
  EXPECT_DOUBLE_EQ(s.median_ns, 3.0);
  EXPECT_DOUBLE_EQ(s.avg_ns, 3.0);
}

TEST(StatsTest, SummarizeDropsTopOutliers) {
  std::vector<uint64_t> v(1000, 10);
  v.push_back(1000000);  // one outlier among 1001 samples
  const LatencySummary s = Summarize(v, 0.001);
  EXPECT_EQ(s.count, 1000u);
  EXPECT_DOUBLE_EQ(s.max_ns, 10.0);
}

TEST(StatsTest, SummarizeEmpty) {
  std::vector<uint64_t> v;
  const LatencySummary s = Summarize(v);
  EXPECT_EQ(s.count, 0u);
  // Every field of an empty summary is zero — no NaNs, no stale values.
  EXPECT_DOUBLE_EQ(s.min_ns, 0.0);
  EXPECT_DOUBLE_EQ(s.p25_ns, 0.0);
  EXPECT_DOUBLE_EQ(s.median_ns, 0.0);
  EXPECT_DOUBLE_EQ(s.p75_ns, 0.0);
  EXPECT_DOUBLE_EQ(s.p99_ns, 0.0);
  EXPECT_DOUBLE_EQ(s.p999_ns, 0.0);
  EXPECT_DOUBLE_EQ(s.max_ns, 0.0);
  EXPECT_DOUBLE_EQ(s.avg_ns, 0.0);
}

TEST(StatsTest, SummarizeEmptyWithDropFraction) {
  // drop_top on an empty input must not underflow the kept-count.
  std::vector<uint64_t> v;
  const LatencySummary s = Summarize(v, 0.5);
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.max_ns, 0.0);
}

TEST(StatsTest, SummarizeSingleSample) {
  // Regression: a single sample is every percentile, and the summary's
  // count is 1 — it must not report zeros or divide by zero.
  std::vector<uint64_t> v = {37};
  const LatencySummary s = Summarize(v);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min_ns, 37.0);
  EXPECT_DOUBLE_EQ(s.p25_ns, 37.0);
  EXPECT_DOUBLE_EQ(s.median_ns, 37.0);
  EXPECT_DOUBLE_EQ(s.p75_ns, 37.0);
  EXPECT_DOUBLE_EQ(s.p99_ns, 37.0);
  EXPECT_DOUBLE_EQ(s.p999_ns, 37.0);
  EXPECT_DOUBLE_EQ(s.max_ns, 37.0);
  EXPECT_DOUBLE_EQ(s.avg_ns, 37.0);
}

TEST(StatsTest, SummarizeSingleSampleNeverDroppedAsOutlier) {
  // Regression: even an aggressive drop fraction keeps the last sample —
  // the outlier trim must never empty a nonempty input.
  std::vector<uint64_t> v = {99};
  const LatencySummary s = Summarize(v, 0.9);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min_ns, 99.0);
  EXPECT_DOUBLE_EQ(s.max_ns, 99.0);
}

TEST(StatsTest, RecorderRoundTrip) {
  LatencyRecorder rec(8);
  for (uint64_t x : {4u, 8u, 2u}) rec.Record(x);
  const LatencySummary s = rec.Finish();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min_ns, 2.0);
  EXPECT_TRUE(rec.samples().empty());
}

// ---------------------------------------------------------------------
// Adversarial frame decoding (DESIGN.md §14.2). The contract under test:
// every malformed input yields a typed util::FrameError — never a crash,
// never a partial tuple — and an incomplete-but-consistent prefix is
// kNeedMore, not an error. Covers both the stream-level ReadFramed used
// by checkpoints and the incremental net::FrameDecoder used by the TCP
// front door (same frame layout, same taxonomy).
// ---------------------------------------------------------------------

namespace {

std::vector<net::WireTuple> TestTuples(std::size_t n) {
  std::vector<net::WireTuple> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = {i + 1, static_cast<double>(i) * 0.5};
  }
  return v;
}

std::string GoldenFrame(std::size_t n) {
  const std::vector<net::WireTuple> tuples = TestTuples(n);
  std::string out;
  net::EncodeBatch(tuples.data(), tuples.size(), &out);
  return out;
}

/// Wraps an arbitrary payload in a correctly-CRC'd frame, so payload-level
/// corruption can be tested without tripping the CRC check first.
std::string FrameOver(const std::string& payload) {
  std::ostringstream os;
  WriteFramed(os, payload);
  return os.str();
}

}  // namespace

TEST(SerdeFrameTest, ReadFramedRoundTrip) {
  std::ostringstream os;
  WriteFramed(os, "hello checkpoint");
  std::istringstream is(os.str());
  std::string payload;
  EXPECT_EQ(ReadFramed(is, &payload), FrameError::kOk);
  EXPECT_EQ(payload, "hello checkpoint");
}

TEST(SerdeFrameTest, ReadFramedTruncatedAtEveryPrefix) {
  std::ostringstream os;
  WriteFramed(os, "some payload bytes");
  const std::string full = os.str();
  // Every strict prefix of a valid frame is a torn write: always the
  // typed kTruncated, never a crash or a bogus payload.
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::istringstream is(full.substr(0, cut));
    std::string payload;
    EXPECT_EQ(ReadFramed(is, &payload), FrameError::kTruncated)
        << "prefix length " << cut;
  }
}

TEST(SerdeFrameTest, ReadFramedClassifiesHeaderCorruption) {
  std::ostringstream os;
  WriteFramed(os, "payload");
  const std::string full = os.str();

  std::string bad_magic = full;
  bad_magic[0] ^= 0x01;
  std::istringstream is1(bad_magic);
  std::string p;
  EXPECT_EQ(ReadFramed(is1, &p), FrameError::kBadMagic);

  std::string bad_version = full;
  bad_version[4] ^= 0x01;
  std::istringstream is2(bad_version);
  EXPECT_EQ(ReadFramed(is2, &p), FrameError::kBadVersion);

  std::string bad_crc = full;
  bad_crc[net::kFrameHeaderBytes] ^= 0x01;  // first payload byte
  std::istringstream is3(bad_crc);
  EXPECT_EQ(ReadFramed(is3, &p), FrameError::kCrcMismatch);
}

TEST(FrameDecoderTest, SplitAtEveryBoundaryIsNeedMoreThenFrame) {
  const std::string frame = GoldenFrame(3);
  const std::vector<net::WireTuple> want = TestTuples(3);
  // Feed the frame in two chunks, cut at every byte boundary: the prefix
  // must always be kNeedMore (it is consistent with a frame in flight),
  // and the remainder must complete it to exactly the encoded batch.
  for (std::size_t cut = 0; cut <= frame.size(); ++cut) {
    net::FrameDecoder dec;
    std::vector<net::WireTuple> out;
    dec.Feed(frame.data(), cut);
    if (cut < frame.size()) {
      ASSERT_EQ(dec.Next(&out), net::FrameDecoder::Status::kNeedMore)
          << "cut " << cut;
      dec.Feed(frame.data() + cut, frame.size() - cut);
    }
    ASSERT_EQ(dec.Next(&out), net::FrameDecoder::Status::kFrame)
        << "cut " << cut;
    ASSERT_EQ(out.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(out[i].ts, want[i].ts);
      EXPECT_DOUBLE_EQ(out[i].v, want[i].v);
    }
    EXPECT_EQ(dec.error(), FrameError::kOk);
    EXPECT_EQ(dec.buffered(), 0u);
  }
}

TEST(FrameDecoderTest, ByteAtATimeFeedReassemblesManyFrames) {
  std::string stream = GoldenFrame(2);
  stream += GoldenFrame(5);
  stream += GoldenFrame(0);  // an empty batch is a legal frame
  net::FrameDecoder dec;
  std::vector<std::size_t> batch_sizes;
  std::vector<net::WireTuple> out;
  for (char c : stream) {
    dec.Feed(&c, 1);
    while (dec.Next(&out) == net::FrameDecoder::Status::kFrame) {
      batch_sizes.push_back(out.size());
    }
    ASSERT_EQ(dec.error(), FrameError::kOk);
  }
  EXPECT_EQ(batch_sizes, (std::vector<std::size_t>{2, 5, 0}));
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(FrameDecoderTest, BadMagicMidStreamPoisonsAfterTheGoodFrame) {
  std::string stream = GoldenFrame(2);
  stream += "XXXXGARBAGE-NOT-A-FRAME-HEADER";  // > header size, wrong magic
  net::FrameDecoder dec;
  dec.Feed(stream.data(), stream.size());
  std::vector<net::WireTuple> out;
  // The complete frame ahead of the garbage still decodes...
  ASSERT_EQ(dec.Next(&out), net::FrameDecoder::Status::kFrame);
  EXPECT_EQ(out.size(), 2u);
  // ...then the stream poisons with the typed error, and stays poisoned
  // even if well-formed bytes arrive afterwards (no resync markers).
  ASSERT_EQ(dec.Next(&out), net::FrameDecoder::Status::kError);
  EXPECT_EQ(dec.error(), FrameError::kBadMagic);
  const std::string good = GoldenFrame(1);
  dec.Feed(good.data(), good.size());
  EXPECT_EQ(dec.Next(&out), net::FrameDecoder::Status::kError);
  EXPECT_EQ(dec.error(), FrameError::kBadMagic);
}

TEST(FrameDecoderTest, UnknownFrameVersionIsTyped) {
  std::string frame = GoldenFrame(1);
  frame[4] ^= 0x02;  // version word
  net::FrameDecoder dec;
  dec.Feed(frame.data(), frame.size());
  std::vector<net::WireTuple> out;
  EXPECT_EQ(dec.Next(&out), net::FrameDecoder::Status::kError);
  EXPECT_EQ(dec.error(), FrameError::kBadVersion);
}

TEST(FrameDecoderTest, OversizeDeclaredPayloadRejectedBeforeBuffering) {
  // A hostile length field must fail from the header alone — the decoder
  // must not wait for (or try to allocate) the declared 2^40 bytes.
  std::string header;
  header.append(reinterpret_cast<const char*>(&kFrameMagic), 4);
  header.append(reinterpret_cast<const char*>(&kFrameVersion), 4);
  const uint64_t absurd = uint64_t{1} << 40;
  header.append(reinterpret_cast<const char*>(&absurd), 8);
  const uint32_t crc = 0;
  header.append(reinterpret_cast<const char*>(&crc), 4);
  net::FrameDecoder dec(/*max_frame_bytes=*/1 << 16);
  dec.Feed(header.data(), header.size());
  std::vector<net::WireTuple> out;
  EXPECT_EQ(dec.Next(&out), net::FrameDecoder::Status::kError);
  EXPECT_EQ(dec.error(), FrameError::kTruncated);
}

TEST(FrameDecoderTest, CrcCorruptionFuzzNeverYieldsTuples) {
  // Flip one random payload bit per round: the CRC must catch every one,
  // and no round may surface tuples from the corrupt frame.
  SplitMix64 rng(0x5eedu);
  const std::string golden = GoldenFrame(8);
  const std::size_t payload_len = golden.size() - net::kFrameHeaderBytes;
  for (int round = 0; round < 200; ++round) {
    std::string frame = golden;
    const std::size_t byte =
        net::kFrameHeaderBytes + rng.NextBounded(payload_len);
    frame[byte] ^= static_cast<char>(1u << rng.NextBounded(8));
    net::FrameDecoder dec;
    dec.Feed(frame.data(), frame.size());
    std::vector<net::WireTuple> out;
    ASSERT_EQ(dec.Next(&out), net::FrameDecoder::Status::kError)
        << "round " << round << " byte " << byte;
    ASSERT_EQ(dec.error(), FrameError::kCrcMismatch);
  }
}

TEST(FrameDecoderTest, MalformedBatchPayloadIsBadPayload) {
  // CRC-valid frames whose batch payload is malformed: wrong inner tag,
  // wrong batch version, count disagreeing with the byte length (both
  // directions), and a payload shorter than the batch header. All must
  // classify as kBadPayload — a verified CRC is not a verified batch.
  const std::vector<net::WireTuple> tuples = TestTuples(2);
  std::string base;
  base.append(reinterpret_cast<const char*>(&net::kIngestBatchTag), 4);
  base.append(reinterpret_cast<const char*>(&net::kIngestBatchVersion), 4);
  const uint64_t count = tuples.size();
  base.append(reinterpret_cast<const char*>(&count), 8);
  base.append(reinterpret_cast<const char*>(tuples.data()),
              tuples.size() * sizeof(net::WireTuple));

  std::string wrong_tag = base;
  wrong_tag[0] ^= 0x01;
  std::string wrong_version = base;
  wrong_version[4] ^= 0x01;
  std::string trailing_garbage = base + "extra";
  std::string short_data = base.substr(0, base.size() - 1);
  std::string tiny = base.substr(0, net::kBatchHeaderBytes - 1);

  for (const std::string& payload :
       {wrong_tag, wrong_version, trailing_garbage, short_data, tiny}) {
    const std::string frame = FrameOver(payload);
    net::FrameDecoder dec;
    dec.Feed(frame.data(), frame.size());
    std::vector<net::WireTuple> out;
    ASSERT_EQ(dec.Next(&out), net::FrameDecoder::Status::kError);
    EXPECT_EQ(dec.error(), FrameError::kBadPayload);
  }

  // Sanity: the uncorrupted base payload decodes.
  const std::string frame = FrameOver(base);
  net::FrameDecoder dec;
  dec.Feed(frame.data(), frame.size());
  std::vector<net::WireTuple> out;
  ASSERT_EQ(dec.Next(&out), net::FrameDecoder::Status::kFrame);
  EXPECT_EQ(out.size(), 2u);
}

TEST(FrameDecoderTest, OverflowingDeclaredCountIsBadPayloadNotLengthError) {
  // A count field chosen so `count * sizeof(WireTuple)` wraps mod 2^64 to
  // the actual body length: the length-match check must be computed
  // without the multiply, or the CRC-valid frame passes validation and
  // the resize throws std::length_error through the event loop. count =
  // 2^60 wraps to 0 (empty body); 2^60 + k wraps to k tuples of body.
  const std::vector<net::WireTuple> tuples = TestTuples(2);
  for (const uint64_t wrapping_count :
       {uint64_t{1} << 60, (uint64_t{1} << 60) + 2, (uint64_t{1} << 62) + 2}) {
    std::string payload;
    payload.append(reinterpret_cast<const char*>(&net::kIngestBatchTag), 4);
    payload.append(reinterpret_cast<const char*>(&net::kIngestBatchVersion),
                   4);
    payload.append(reinterpret_cast<const char*>(&wrapping_count), 8);
    const std::size_t body =
        static_cast<std::size_t>(wrapping_count * sizeof(net::WireTuple));
    payload.append(reinterpret_cast<const char*>(tuples.data()), body);
    const std::string frame = FrameOver(payload);
    net::FrameDecoder dec;
    dec.Feed(frame.data(), frame.size());
    std::vector<net::WireTuple> out;
    ASSERT_EQ(dec.Next(&out), net::FrameDecoder::Status::kError)
        << "count " << wrapping_count;
    EXPECT_EQ(dec.error(), FrameError::kBadPayload);
    EXPECT_TRUE(out.empty());
  }
}

TEST(FrameDecoderTest, BufferedAccountsForTheUnconsumedTail) {
  const std::string first = GoldenFrame(3);
  const std::string second = GoldenFrame(1);
  net::FrameDecoder dec;
  dec.Feed(first.data(), first.size());
  dec.Feed(second.data(), second.size() / 2);  // half of the next frame
  std::vector<net::WireTuple> out;
  ASSERT_EQ(dec.Next(&out), net::FrameDecoder::Status::kFrame);
  EXPECT_EQ(dec.buffered(), second.size() / 2);
  ASSERT_EQ(dec.Next(&out), net::FrameDecoder::Status::kNeedMore);
  dec.Feed(second.data() + second.size() / 2,
           second.size() - second.size() / 2);
  ASSERT_EQ(dec.Next(&out), net::FrameDecoder::Status::kFrame);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(MemoryTest, RssReadable) {
  // Smoke check: on Linux both values should be nonzero and peak >= current.
  const uint64_t peak = PeakRssBytes();
  const uint64_t cur = CurrentRssBytes();
  EXPECT_GT(peak, 0u);
  EXPECT_GT(cur, 0u);
  EXPECT_GE(peak, cur / 2);  // loose: RSS can shrink below the peak
}

}  // namespace
}  // namespace slick::util
