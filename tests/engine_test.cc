// End-to-end validation of the ACQ engine: raw tuples -> shared plan ->
// partial aggregation -> final aggregation -> per-query answers, checked
// against a tuple-level brute-force model for every final aggregator.

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/slick_deque_inv.h"
#include "core/slick_deque_noninv.h"
#include "core/windowed.h"
#include "engine/acq_engine.h"
#include "ops/ops.h"
#include "util/rng.h"
#include "window/b_int.h"
#include "window/daba.h"
#include "window/flat_fat.h"
#include "window/flat_fit.h"
#include "window/naive.h"

namespace slick::engine {
namespace {

using plan::Pat;
using plan::QuerySpec;

// Tuple-level model: every query q answers at tuple counts divisible by its
// slide with the fold of the last min(range, seen) raw values (identity for
// the not-yet-seen prefix, matching the engine's warm-up semantics).
template <typename Op>
class TupleModel {
 public:
  explicit TupleModel(std::vector<QuerySpec> queries)
      : queries_(std::move(queries)) {}

  /// Feeds a value; returns (query_index, result) pairs due at this tuple.
  std::vector<std::pair<uint32_t, typename Op::result_type>> Push(
      const typename Op::input_type& x) {
    history_.push_back(Op::lift(x));
    ++count_;
    std::vector<std::pair<uint32_t, typename Op::result_type>> due;
    for (uint32_t qi = 0; qi < queries_.size(); ++qi) {
      if (count_ % queries_[qi].slide != 0) continue;
      const uint64_t r = std::min<uint64_t>(queries_[qi].range, count_);
      auto acc = Op::identity();
      for (std::size_t i = history_.size() - r; i < history_.size(); ++i) {
        acc = Op::combine(acc, history_[i]);
      }
      due.emplace_back(qi, Op::lower(acc));
    }
    return due;
  }

 private:
  std::vector<QuerySpec> queries_;
  std::deque<typename Op::value_type> history_;
  uint64_t count_ = 0;
};

template <typename Op>
typename Op::input_type MakeInput(int64_t v) {
  if constexpr (std::is_same_v<typename Op::input_type, std::string>) {
    return std::string(1, static_cast<char>('a' + ((v % 26) + 26) % 26));
  } else {
    return static_cast<typename Op::input_type>(v);
  }
}

template <typename Agg>
void RunEngineOracle(std::vector<QuerySpec> queries, Pat pat,
                     std::size_t tuples, uint64_t seed) {
  using Op = typename Agg::op_type;
  AcqEngine<Agg> eng(queries, pat);
  TupleModel<Op> model(queries);
  util::SplitMix64 rng(seed);

  std::vector<std::pair<uint32_t, typename Op::result_type>> got;
  for (std::size_t i = 0; i < tuples; ++i) {
    const auto x =
        MakeInput<Op>(static_cast<int64_t>(rng.NextBounded(2001)) - 1000);
    got.clear();
    eng.Push(x, [&](uint32_t q, const typename Op::result_type& res) {
      got.emplace_back(q, res);
    });
    auto want = model.Push(x);
    // The engine reports in descending-range order (for the deque walk);
    // the model reports in query order. Compare order-insensitively.
    std::sort(got.begin(), got.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::sort(want.begin(), want.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    ASSERT_EQ(got.size(), want.size()) << "tuple " << i;
    for (std::size_t k = 0; k < want.size(); ++k) {
      ASSERT_EQ(got[k].first, want[k].first) << "tuple " << i;
      ASSERT_EQ(got[k].second, want[k].second)
          << "tuple " << i << " query " << want[k].first;
    }
  }
}

// The workloads. Query sets are chosen so every plan stays executable under
// Pairs and exercises fragments (range % slide != 0), heterogeneous slides,
// equal-range sharing and multi-composite wrap-around.
std::vector<QuerySpec> SingleSlideOne() { return {{64, 1}}; }
std::vector<QuerySpec> MultiSlideOne() {
  return {{64, 1}, {17, 1}, {5, 1}, {1, 1}};
}
std::vector<QuerySpec> Fragmented() { return {{7, 3}}; }
std::vector<QuerySpec> PaperExampleOne() { return {{6, 2}, {8, 4}}; }
std::vector<QuerySpec> Heterogeneous() {
  return {{12, 2}, {7, 3}, {30, 5}, {9, 2}};
}

TEST(AcqEngineTest, NaiveAllWorkloads) {
  using Agg = window::NaiveWindow<ops::SumInt>;
  RunEngineOracle<Agg>(SingleSlideOne(), Pat::kPairs, 500, 1);
  RunEngineOracle<Agg>(MultiSlideOne(), Pat::kPairs, 500, 2);
  RunEngineOracle<Agg>(Fragmented(), Pat::kPairs, 500, 3);
  RunEngineOracle<Agg>(PaperExampleOne(), Pat::kPairs, 500, 4);
  RunEngineOracle<Agg>(Heterogeneous(), Pat::kPairs, 1000, 5);
}

TEST(AcqEngineTest, FlatFatAllWorkloads) {
  using Agg = window::FlatFat<ops::SumInt>;
  RunEngineOracle<Agg>(MultiSlideOne(), Pat::kPairs, 500, 6);
  RunEngineOracle<Agg>(PaperExampleOne(), Pat::kPairs, 500, 7);
  RunEngineOracle<Agg>(Heterogeneous(), Pat::kPairs, 1000, 8);
}

TEST(AcqEngineTest, BIntAllWorkloads) {
  using Agg = window::BInt<ops::SumInt>;
  RunEngineOracle<Agg>(MultiSlideOne(), Pat::kPairs, 500, 9);
  RunEngineOracle<Agg>(Heterogeneous(), Pat::kPairs, 1000, 10);
}

TEST(AcqEngineTest, FlatFitAllWorkloads) {
  using Agg = window::FlatFit<ops::SumInt>;
  RunEngineOracle<Agg>(MultiSlideOne(), Pat::kPairs, 500, 11);
  RunEngineOracle<Agg>(PaperExampleOne(), Pat::kPairs, 500, 12);
  RunEngineOracle<Agg>(Heterogeneous(), Pat::kPairs, 1000, 13);
}

TEST(AcqEngineTest, SlickDequeInvAllWorkloads) {
  using Agg = core::SlickDequeInv<ops::SumInt>;
  RunEngineOracle<Agg>(SingleSlideOne(), Pat::kPairs, 500, 14);
  RunEngineOracle<Agg>(MultiSlideOne(), Pat::kPairs, 500, 15);
  RunEngineOracle<Agg>(Fragmented(), Pat::kPairs, 500, 16);
  RunEngineOracle<Agg>(PaperExampleOne(), Pat::kPairs, 500, 17);
  RunEngineOracle<Agg>(Heterogeneous(), Pat::kPairs, 1500, 18);
}

TEST(AcqEngineTest, SlickDequeNonInvAllWorkloads) {
  using Agg = core::SlickDequeNonInv<ops::MaxInt>;
  RunEngineOracle<Agg>(SingleSlideOne(), Pat::kPairs, 500, 19);
  RunEngineOracle<Agg>(MultiSlideOne(), Pat::kPairs, 500, 20);
  RunEngineOracle<Agg>(Fragmented(), Pat::kPairs, 500, 21);
  RunEngineOracle<Agg>(PaperExampleOne(), Pat::kPairs, 500, 22);
  RunEngineOracle<Agg>(Heterogeneous(), Pat::kPairs, 1500, 23);
}

TEST(AcqEngineTest, WindowedDabaSingleQuery) {
  using Agg = core::Windowed<window::Daba<ops::SumInt>>;
  RunEngineOracle<Agg>(SingleSlideOne(), Pat::kPairs, 500, 24);
  RunEngineOracle<Agg>(Fragmented(), Pat::kPairs, 500, 25);
}

TEST(AcqEngineTest, ConcatThroughEngineKeepsOrder) {
  using Agg = window::FlatFat<ops::Concat>;
  RunEngineOracle<Agg>(MultiSlideOne(), Pat::kPairs, 300, 26);
}

TEST(AcqEngineTest, PanesPatWorksToo) {
  using Agg = core::SlickDequeInv<ops::SumInt>;
  RunEngineOracle<Agg>(PaperExampleOne(), Pat::kPanes, 500, 27);
  RunEngineOracle<Agg>(Fragmented(), Pat::kPanes, 500, 28);
}

TEST(AcqEngineTest, CountersAdvance) {
  AcqEngine<core::SlickDequeInv<ops::SumInt>> eng({{4, 2}}, Pat::kPairs);
  int answers = 0;
  for (int i = 0; i < 10; ++i) {
    eng.Push(1, [&](uint32_t, long) { ++answers; });
  }
  EXPECT_EQ(eng.tuples_processed(), 10u);
  EXPECT_EQ(eng.answers_produced(), 5u);  // one answer per slide of 2
  EXPECT_EQ(answers, 5);
  EXPECT_GT(eng.memory_bytes(), 0u);
}

TEST(AcqEngineTest, RejectsNonExecutablePlan) {
  using Agg = window::NaiveWindow<ops::SumInt>;
  EXPECT_DEATH((AcqEngine<Agg>({{7, 3}}, Pat::kCutty)), "mid-partial");
}

}  // namespace
}  // namespace slick::engine
