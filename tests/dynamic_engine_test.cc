// DynamicAcqEngine tests (the paper's §6 "dynamic environments" future
// work): queries registering/deregistering mid-stream must keep every
// answer phase-aligned with the global stream and value-exact within the
// retention horizon.

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/slick_deque_inv.h"
#include "core/slick_deque_noninv.h"
#include "engine/dynamic_engine.h"
#include "ops/arith.h"
#include "ops/minmax.h"
#include "util/rng.h"

namespace slick::engine {
namespace {

using plan::Pat;
using plan::QuerySpec;

/// Scripted registry events: at global tuple count `at`, add or remove.
struct Event {
  uint64_t at = 0;
  bool add = true;
  QuerySpec spec;    // for add
  std::size_t slot = 0;  // for remove: index into the added-order list
};

/// Runs a script through the engine and through a brute-force model and
/// compares every emitted answer.
template <typename Agg>
void RunScript(const std::vector<Event>& events, uint64_t tuples,
               uint64_t seed) {
  using Op = typename Agg::op_type;
  DynamicAcqEngine<Agg> eng(Pat::kPairs);
  util::SplitMix64 rng(seed);

  std::vector<int64_t> stream(tuples);
  for (auto& v : stream) v = static_cast<int64_t>(rng.NextBounded(2001)) - 1000;

  std::vector<uint32_t> ids;          // ids in added order
  std::map<uint32_t, QuerySpec> live;  // currently registered
  std::size_t next_event = 0;

  std::vector<std::pair<uint32_t, typename Op::result_type>> got, want;
  for (uint64_t t = 0; t < tuples; ++t) {
    while (next_event < events.size() && events[next_event].at == t) {
      const Event& e = events[next_event++];
      if (e.add) {
        const uint32_t id = eng.AddQuery(e.spec);
        ids.push_back(id);
        live.emplace(id, e.spec);
      } else {
        const uint32_t id = ids.at(e.slot);
        ASSERT_TRUE(eng.RemoveQuery(id));
        live.erase(id);
      }
    }
    got.clear();
    eng.Push(stream[t],
             [&](uint32_t id, const typename Op::result_type& res) {
               got.emplace_back(id, res);
             });

    // Brute force: every live query answers at global counts divisible by
    // its slide, over the last min(range, t+1) tuples.
    want.clear();
    for (const auto& [id, spec] : live) {
      if ((t + 1) % spec.slide != 0) continue;
      const uint64_t r = std::min<uint64_t>(spec.range, t + 1);
      auto acc = Op::identity();
      for (uint64_t i = t + 1 - r; i <= t; ++i) {
        acc = Op::combine(acc, Op::lift(stream[i]));
      }
      want.emplace_back(id, Op::lower(acc));
    }
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    ASSERT_EQ(got, want) << "tuple " << t;
  }
}

TEST(DynamicEngineTest, SingleQueryFromStart) {
  RunScript<core::SlickDequeInv<ops::SumInt>>({{0, true, {32, 4}, 0}}, 300,
                                              1);
}

TEST(DynamicEngineTest, QueryAddedMidStreamSeesHistory) {
  // The added query's first answers cover pre-registration tuples (exact,
  // thanks to retention).
  RunScript<core::SlickDequeInv<ops::SumInt>>({{100, true, {64, 8}, 0}}, 400,
                                              2);
}

TEST(DynamicEngineTest, AddChangesCompositeWithoutBreakingPhase) {
  // Second query has a coprime slide: the composite slide jumps from 4 to
  // 12; the first query must keep answering at multiples of 4.
  RunScript<core::SlickDequeInv<ops::SumInt>>(
      {{0, true, {32, 4}, 0}, {150, true, {18, 3}, 0}}, 500, 3);
}

TEST(DynamicEngineTest, RemoveStopsAnswersOthersUnaffected) {
  RunScript<core::SlickDequeInv<ops::SumInt>>(
      {{0, true, {32, 4}, 0},
       {50, true, {20, 5}, 0},
       {200, false, {}, 0},   // remove the (32,4) query
       {300, true, {16, 2}, 0}},
      600, 4);
}

TEST(DynamicEngineTest, ChurnManyQueries) {
  std::vector<Event> events;
  // Staggered adds and removes, mixed slides/ranges incl. fragments.
  events.push_back({0, true, {24, 4}, 0});
  events.push_back({40, true, {7, 3}, 0});
  events.push_back({80, true, {50, 10}, 0});
  events.push_back({160, false, {}, 1});  // remove (7,3)
  events.push_back({200, true, {9, 2}, 0});
  events.push_back({320, false, {}, 0});  // remove (24,4)
  events.push_back({400, true, {40, 8}, 0});
  RunScript<core::SlickDequeInv<ops::SumInt>>(events, 700, 5);
}

TEST(DynamicEngineTest, NonInvertibleAggregatorWorksToo) {
  RunScript<core::SlickDequeNonInv<ops::MaxInt>>(
      {{0, true, {32, 4}, 0}, {150, true, {18, 3}, 0}, {350, false, {}, 0}},
      600, 6);
}

TEST(DynamicEngineTest, NoQueriesMeansNoAnswers) {
  DynamicAcqEngine<core::SlickDequeInv<ops::SumInt>> eng(Pat::kPairs);
  int answers = 0;
  for (int i = 0; i < 50; ++i) {
    eng.Push(static_cast<int64_t>(i), [&](uint32_t, int64_t) { ++answers; });
  }
  EXPECT_EQ(answers, 0);
  EXPECT_FALSE(eng.has_plan());
  EXPECT_EQ(eng.tuples_processed(), 50u);
}

TEST(DynamicEngineTest, RemoveUnknownIdReturnsFalse) {
  DynamicAcqEngine<core::SlickDequeInv<ops::SumInt>> eng(Pat::kPairs);
  EXPECT_FALSE(eng.RemoveQuery(99));
  const uint32_t id = eng.AddQuery({8, 2});
  EXPECT_TRUE(eng.RemoveQuery(id));
  EXPECT_FALSE(eng.RemoveQuery(id));
}

TEST(DynamicEngineTest, LimitedRetentionDegradesToWarmup) {
  // With a tiny retention buffer, a query added late still answers with
  // correct *phase*; values treat un-retained history as identity.
  DynamicAcqEngine<core::SlickDequeInv<ops::SumInt>> eng(Pat::kPairs,
                                                         /*retention=*/16);
  for (int i = 0; i < 100; ++i) {
    eng.Push(1, [](uint32_t, int64_t) {});
  }
  eng.AddQuery({64, 4});  // range 64, but only <=16 tuples retained
  std::vector<std::pair<uint64_t, int64_t>> answers;
  for (int i = 100; i < 120; ++i) {
    eng.Push(1, [&](uint32_t, int64_t a) {
      answers.emplace_back(static_cast<uint64_t>(i + 1), a);
    });
  }
  ASSERT_EQ(answers.size(), 5u);  // tuples 104, 108, 112, 116, 120
  for (const auto& [t, a] : answers) {
    EXPECT_EQ(t % 4, 0u) << "phase must stay globally aligned";
    // Window covers 64 tuples of 1s, but only retained + new data counts.
    EXPECT_LE(a, 64);
    EXPECT_GE(a, 16);
  }
  EXPECT_EQ(answers.back().second, 16 + 20);  // retained 16 + 20 live
}

}  // namespace
}  // namespace slick::engine
