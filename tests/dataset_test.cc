// Dataset loader tests: CSV column extraction, binary cache round trip,
// and the bench-facing LoadOrSynthesize fallback logic.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "stream/dataset.h"

namespace slick::stream {
namespace {

class DatasetTest : public ::testing::Test {
 protected:
  std::string TempPath(const char* name) {
    return testing::TempDir() + "/slickdeque_" + name;
  }

  void WriteFile(const std::string& path, const char* content) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(content, f);
    std::fclose(f);
  }
};

TEST_F(DatasetTest, LoadCsvColumnBasic) {
  const std::string path = TempPath("basic.csv");
  WriteFile(path,
            "ts,mf01,mf02\n"
            "1,10.5,20.5\n"
            "2,11.5,21.5\n"
            "3,12.5,22.5\n");
  std::vector<double> col;
  ASSERT_TRUE(LoadCsvColumn(path, 1, &col));
  EXPECT_EQ(col, (std::vector<double>{10.5, 11.5, 12.5}));
  ASSERT_TRUE(LoadCsvColumn(path, 2, &col));
  EXPECT_EQ(col, (std::vector<double>{20.5, 21.5, 22.5}));
  // Column 0 parses the timestamps (numeric) and skips the header.
  ASSERT_TRUE(LoadCsvColumn(path, 0, &col));
  EXPECT_EQ(col, (std::vector<double>{1, 2, 3}));
}

TEST_F(DatasetTest, LoadCsvHandlesSeparatorsAndJunk) {
  const std::string path = TempPath("mixed.csv");
  WriteFile(path,
            "# comment line\n"
            "1;2.5;3\n"
            "4\t5.5\t6\n"
            "7 8.5 9\n"
            "not,numbers,here\n");
  std::vector<double> col;
  ASSERT_TRUE(LoadCsvColumn(path, 1, &col));
  EXPECT_EQ(col, (std::vector<double>{2.5, 5.5, 8.5}));
}

TEST_F(DatasetTest, LoadCsvMissingFileFails) {
  std::vector<double> col;
  EXPECT_FALSE(LoadCsvColumn(TempPath("nope.csv"), 0, &col));
}

TEST_F(DatasetTest, BinaryRoundTrip) {
  const std::string path = TempPath("cache.bin");
  const std::vector<double> values = {1.0, -2.5, 3e17, 0.0, 42.42};
  ASSERT_TRUE(SaveBinary(path, values));
  std::vector<double> loaded;
  ASSERT_TRUE(LoadBinary(path, &loaded));
  EXPECT_EQ(loaded, values);
}

TEST_F(DatasetTest, BinaryRejectsGarbage) {
  const std::string path = TempPath("garbage.bin");
  WriteFile(path, "this is not a slickdeque cache");
  std::vector<double> loaded;
  EXPECT_FALSE(LoadBinary(path, &loaded));
  EXPECT_TRUE(loaded.empty());
}

TEST_F(DatasetTest, BinaryEmptySeries) {
  const std::string path = TempPath("empty.bin");
  ASSERT_TRUE(SaveBinary(path, {}));
  std::vector<double> loaded = {1.0};
  ASSERT_TRUE(LoadBinary(path, &loaded));
  EXPECT_TRUE(loaded.empty());
}

TEST_F(DatasetTest, LoadOrSynthesizeUsesFileWhenPresent) {
  const std::string path = TempPath("series.bin");
  ASSERT_TRUE(SaveBinary(path, {7.0, 8.0, 9.0, 10.0}));
  const auto data = LoadOrSynthesize(path, 3, 42);
  EXPECT_EQ(data, (std::vector<double>{7.0, 8.0, 9.0}));  // truncated
}

TEST_F(DatasetTest, LoadOrSynthesizeFallsBackToSynthetic) {
  const auto a = LoadOrSynthesize("", 100, 42);
  const auto b = LoadOrSynthesize(TempPath("missing.bin"), 100, 42);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(a, b);  // same seed, same synthetic stream
}

}  // namespace
}  // namespace slick::stream
