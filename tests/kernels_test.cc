// Vectorized kernels (DESIGN.md §11, §16): the dispatchers must agree with
// a plain sequential combine loop — bit-identically for the integer and
// selective (min/max) kernels, and within an accumulated-rounding ULP bound
// for floating-point sums, whose SIMD lanes reassociate the addition. Sizes
// straddle kSimdThreshold and every vector width's remainder handling, and
// each differential check runs once per compiled dispatch level (scalar
// plus whatever of AVX2/AVX-512/NEON the host supports), so the scalar
// kernels double as the oracle for every wide variant in one process.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ops/arith.h"
#include "ops/kernels.h"
#include "ops/minmax.h"
#include "ops/scan_kernels.h"
#include "ops/string_ops.h"
#include "ops/traits.h"
#include "util/rng.h"

namespace slick::ops {
namespace {

constexpr std::size_t kSizes[] = {0, 1, 7, 15, 16, 17, 64, 255, 1000};

// Runs `f(level)` once per dispatch level the host can execute, with the
// active level pinned for the duration. Restores the detected best after.
template <typename F>
void ForEachCompiledLevel(F&& f) {
  const auto best = static_cast<uint8_t>(kernels::DetectSimdLevel());
  for (uint8_t l = 0; l <= best; ++l) {
    const auto level = static_cast<kernels::SimdLevel>(l);
    kernels::SetSimdLevel(level);
    if (kernels::ActiveSimdLevel() != level) continue;  // not a real level
    f(level);
  }
  kernels::SetSimdLevel(kernels::DetectSimdLevel());
}

std::vector<int64_t> RandomInts(std::size_t n, uint64_t seed) {
  util::SplitMix64 rng(seed);
  std::vector<int64_t> v(n);
  for (auto& x : v) {
    x = static_cast<int64_t>(rng.NextBounded(1u << 20)) - (1 << 19);
  }
  return v;
}

std::vector<double> RandomDoubles(std::size_t n, uint64_t seed) {
  util::SplitMix64 rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = (rng.NextDouble() - 0.5) * 1e6;
  return v;
}

TEST(KernelsTest, FoldAddInt64MatchesLoopExactly) {
  for (std::size_t n : kSizes) {
    const std::vector<int64_t> v = RandomInts(n, 17 + n);
    int64_t expect = 0;
    for (int64_t x : v) expect += x;
    EXPECT_EQ(kernels::FoldAdd(v.data(), n), expect) << "n=" << n;
  }
}

TEST(KernelsTest, FoldMaxInt64MatchesLoopExactly) {
  for (std::size_t n : kSizes) {
    const std::vector<int64_t> v = RandomInts(n, 23 + n);
    int64_t expect = MaxInt::identity();
    for (int64_t x : v) expect = MaxInt::combine(expect, x);
    EXPECT_EQ(kernels::FoldMax(v.data(), n), expect) << "n=" << n;
  }
}

TEST(KernelsTest, FoldAddDoubleWithinReassociationBound) {
  for (std::size_t n : kSizes) {
    const std::vector<double> v = RandomDoubles(n, 29 + n);
    double expect = 0.0, abs_sum = 0.0;
    for (double x : v) {
      expect += x;
      abs_sum += std::abs(x);
    }
    EXPECT_NEAR(kernels::FoldAdd(v.data(), n), expect, 1e-12 * abs_sum)
        << "n=" << n;
  }
}

TEST(KernelsTest, FoldMaxMinDoubleBitIdentical) {
  // Selective kernels never create new values: SIMD max/min must return
  // exactly what the sequential loop returns.
  for (std::size_t n : kSizes) {
    const std::vector<double> v = RandomDoubles(n, 31 + n);
    double emax = Max::identity(), emin = Min::identity();
    for (double x : v) {
      emax = Max::combine(emax, x);
      emin = Min::combine(emin, x);
    }
    EXPECT_EQ(kernels::FoldMax(v.data(), n), emax) << "n=" << n;
    EXPECT_EQ(kernels::FoldMin(v.data(), n), emin) << "n=" << n;
  }
}

TEST(KernelsTest, FoldValuesUsesKernelForKernelOps) {
  const std::vector<int64_t> v = RandomInts(100, 37);
  int64_t sum = 0, max = MaxInt::identity();
  for (int64_t x : v) {
    sum += x;
    max = MaxInt::combine(max, x);
  }
  EXPECT_EQ(FoldValues<SumInt>(v.data(), v.size()), sum);
  EXPECT_EQ(FoldValues<MaxInt>(v.data(), v.size()), max);
}

TEST(KernelsTest, FoldValuesGenericLoopPreservesOrder) {
  // Concat has no kernel: FoldValues must fall back to the in-order combine
  // loop, and the non-commutative result proves the order.
  const std::vector<std::string> v = {"a", "b", "c", "d"};
  EXPECT_EQ(FoldValues<Concat>(v.data(), v.size()), "abcd");
  EXPECT_EQ(FoldValues<Concat>(v.data(), 0), "");
}

TEST(KernelsTest, FoldDispatchersAgreeAcrossLevels) {
  // Every compiled fold variant against the sequential loop: exact for
  // int64 and min/max, reassociation-bounded for the double sum.
  for (std::size_t n : kSizes) {
    const std::vector<int64_t> iv = RandomInts(n, 41 + n);
    const std::vector<double> dv = RandomDoubles(n, 43 + n);
    int64_t isum = 0, imax = MaxInt::identity(), imin = MinInt::identity();
    double dsum = 0.0, dabs = 0.0, dmax = Max::identity(),
           dmin = Min::identity();
    for (int64_t x : iv) {
      isum += x;
      imax = MaxInt::combine(imax, x);
      imin = MinInt::combine(imin, x);
    }
    for (double x : dv) {
      dsum += x;
      dabs += std::abs(x);
      dmax = Max::combine(dmax, x);
      dmin = Min::combine(dmin, x);
    }
    ForEachCompiledLevel([&](kernels::SimdLevel level) {
      SCOPED_TRACE(std::string("level=") + kernels::SimdLevelName(level) +
                   " n=" + std::to_string(n));
      EXPECT_EQ(kernels::FoldAdd(iv.data(), n), isum);
      EXPECT_EQ(kernels::FoldMax(iv.data(), n), imax);
      EXPECT_EQ(kernels::FoldMin(iv.data(), n), imin);
      EXPECT_EQ(kernels::FoldMax(dv.data(), n), dmax);
      EXPECT_EQ(kernels::FoldMin(dv.data(), n), dmin);
      EXPECT_NEAR(kernels::FoldAdd(dv.data(), n), dsum, 1e-12 * dabs);
    });
  }
}

// ------------------------------------------------------------------
// Structural scan kernels (ops/scan_kernels.h).
// ------------------------------------------------------------------

TEST(ScanKernelsTest, SuffixPrefixScanInt64ExactAcrossLevels) {
  for (std::size_t n : kSizes) {
    const std::vector<int64_t> v = RandomInts(n, 51 + n);
    const int64_t carry_add = 1234567;
    // Sequential recurrences, each seeded with a non-identity carry so the
    // carry plumbing is exercised too.
    std::vector<int64_t> suf_add(n), suf_max(n), suf_min(n);
    std::vector<int64_t> pre_add(n), pre_max(n), pre_min(n);
    {
      int64_t ca = carry_add, cx = 42, cn = -42;
      for (std::size_t i = n; i-- > 0;) {
        ca = v[i] + ca;
        cx = MaxInt::combine(v[i], cx);
        cn = MinInt::combine(v[i], cn);
        suf_add[i] = ca;
        suf_max[i] = cx;
        suf_min[i] = cn;
      }
      ca = carry_add;
      cx = 42;
      cn = -42;
      for (std::size_t i = 0; i < n; ++i) {
        ca = ca + v[i];
        cx = MaxInt::combine(cx, v[i]);
        cn = MinInt::combine(cn, v[i]);
        pre_add[i] = ca;
        pre_max[i] = cx;
        pre_min[i] = cn;
      }
    }
    ForEachCompiledLevel([&](kernels::SimdLevel level) {
      SCOPED_TRACE(std::string("level=") + kernels::SimdLevelName(level) +
                   " n=" + std::to_string(n));
      std::vector<int64_t> out(n);
      kernels::SuffixAdd(v.data(), out.data(), n, carry_add);
      EXPECT_EQ(out, suf_add);
      kernels::SuffixMax(v.data(), out.data(), n, int64_t{42});
      EXPECT_EQ(out, suf_max);
      kernels::SuffixMin(v.data(), out.data(), n, int64_t{-42});
      EXPECT_EQ(out, suf_min);
      kernels::PrefixAdd(v.data(), out.data(), n, carry_add);
      EXPECT_EQ(out, pre_add);
      kernels::PrefixMax(v.data(), out.data(), n, int64_t{42});
      EXPECT_EQ(out, pre_max);
      kernels::PrefixMin(v.data(), out.data(), n, int64_t{-42});
      EXPECT_EQ(out, pre_min);
    });
  }
}

TEST(ScanKernelsTest, SuffixPrefixScanDoubleAcrossLevels) {
  // min/max scans are bit-identical; the double-sum scan reassociates
  // within a block, so every element is compared under an accumulated
  // bound instead.
  for (std::size_t n : kSizes) {
    const std::vector<double> v = RandomDoubles(n, 53 + n);
    std::vector<double> suf_max(n), suf_min(n), suf_add(n), abs_suf(n);
    {
      double cx = Max::identity(), cn = Min::identity(), ca = 0.0, aa = 0.0;
      for (std::size_t i = n; i-- > 0;) {
        cx = Max::combine(v[i], cx);
        cn = Min::combine(v[i], cn);
        ca = v[i] + ca;
        aa += std::abs(v[i]);
        suf_max[i] = cx;
        suf_min[i] = cn;
        suf_add[i] = ca;
        abs_suf[i] = aa;
      }
    }
    ForEachCompiledLevel([&](kernels::SimdLevel level) {
      SCOPED_TRACE(std::string("level=") + kernels::SimdLevelName(level) +
                   " n=" + std::to_string(n));
      std::vector<double> out(n);
      kernels::SuffixMax(v.data(), out.data(), n, Max::identity());
      EXPECT_EQ(out, suf_max);
      kernels::SuffixMin(v.data(), out.data(), n, Min::identity());
      EXPECT_EQ(out, suf_min);
      kernels::SuffixAdd(v.data(), out.data(), n, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(out[i], suf_add[i], 1e-12 * abs_suf[i]) << "i=" << i;
      }
    });
  }
}

TEST(ScanKernelsTest, InPlaceSuffixScanAllowed) {
  // The contract allows out == v exactly (the ring flip's in-place mode):
  // each block is loaded before its slot is stored.
  for (std::size_t n : kSizes) {
    const std::vector<int64_t> v = RandomInts(n, 57 + n);
    std::vector<int64_t> expect(n);
    int64_t c = MaxInt::identity();
    for (std::size_t i = n; i-- > 0;) {
      c = MaxInt::combine(v[i], c);
      expect[i] = c;
    }
    ForEachCompiledLevel([&](kernels::SimdLevel level) {
      SCOPED_TRACE(std::string("level=") + kernels::SimdLevelName(level) +
                   " n=" + std::to_string(n));
      std::vector<int64_t> buf = v;
      kernels::SuffixMax(buf.data(), buf.data(), n, MaxInt::identity());
      EXPECT_EQ(buf, expect);
    });
  }
}

// Scalar survivor-staircase reference: bit k set iff element k strictly
// dominates the aggregate of everything after it (no later element absorbs
// it) — the condition SlickDeque (Non-Inv)'s bulk insert keeps a node for.
template <typename Op>
std::vector<uint64_t> ReferenceSurvivors(
    const std::vector<typename Op::value_type>& v,
    typename Op::value_type* total) {
  const std::size_t n = v.size();
  std::vector<uint64_t> mask((n + 63) / 64, 0);
  typename Op::value_type suffix = Op::identity();
  for (std::size_t k = n; k-- > 0;) {
    if (!Absorbs<Op>(suffix, v[k])) {
      mask[k >> 6] |= uint64_t{1} << (k & 63);
    }
    suffix = Op::combine(v[k], suffix);
  }
  *total = suffix;
  return mask;
}

TEST(ScanKernelsTest, SurvivorMasksMatchScalarStaircase) {
  // Duplicate-heavy input stresses the tie edges (ties never survive: the
  // absorbs tests are non-strict). Also covers values equal to ⊕'s
  // identity and an all-equal run.
  for (std::size_t n : kSizes) {
    if (n == 0) continue;  // the deque's bulk path never passes m == 0
    util::SplitMix64 rng(61 + n);
    std::vector<int64_t> iv(n);
    std::vector<double> dv(n);
    for (std::size_t i = 0; i < n; ++i) {
      iv[i] = static_cast<int64_t>(rng.NextBounded(8)) - 4;
      dv[i] = static_cast<double>(static_cast<int64_t>(rng.NextBounded(8))) -
              4.0;
    }
    if (n >= 3) {
      iv[n / 2] = MaxInt::identity();  // INT64_MIN payload
      dv[n / 3] = Min::identity();     // +inf payload
    }
    int64_t iexp_max = 0, iexp_min = 0;
    double dexp_max = 0.0, dexp_min = 0.0;
    const auto imask_max = ReferenceSurvivors<MaxInt>(iv, &iexp_max);
    const auto imask_min = ReferenceSurvivors<MinInt>(iv, &iexp_min);
    const auto dmask_max = ReferenceSurvivors<Max>(dv, &dexp_max);
    const auto dmask_min = ReferenceSurvivors<Min>(dv, &dexp_min);
    ForEachCompiledLevel([&](kernels::SimdLevel level) {
      SCOPED_TRACE(std::string("level=") + kernels::SimdLevelName(level) +
                   " n=" + std::to_string(n));
      std::vector<uint64_t> mask((n + 63) / 64);
      mask.assign(mask.size(), 0);
      EXPECT_EQ(kernels::MaxSurvivors(iv.data(), n, mask.data()), iexp_max);
      EXPECT_EQ(mask, imask_max);
      mask.assign(mask.size(), 0);
      EXPECT_EQ(kernels::MinSurvivors(iv.data(), n, mask.data()), iexp_min);
      EXPECT_EQ(mask, imask_min);
      mask.assign(mask.size(), 0);
      EXPECT_EQ(kernels::MaxSurvivors(dv.data(), n, mask.data()), dexp_max);
      EXPECT_EQ(mask, dmask_max);
      mask.assign(mask.size(), 0);
      EXPECT_EQ(kernels::MinSurvivors(dv.data(), n, mask.data()), dexp_min);
      EXPECT_EQ(mask, dmask_min);
    });
  }
  // All-equal batch: only the newest element survives. Its own bit IS set
  // by the kernel (its suffix is empty, and 7 strictly dominates the
  // identity seed); every earlier element ties with the suffix aggregate
  // and strict dominance rejects it.
  const std::vector<int64_t> same(100, 7);
  ForEachCompiledLevel([&](kernels::SimdLevel level) {
    SCOPED_TRACE(std::string("level=") + kernels::SimdLevelName(level));
    std::vector<uint64_t> mask(2, 0);
    EXPECT_EQ(kernels::MaxSurvivors(same.data(), same.size(), mask.data()),
              7);
    EXPECT_EQ(mask[0], 0u);
    EXPECT_EQ(mask[1], uint64_t{1} << 35);  // bit 99 = newest
  });
}

TEST(ScanKernelsTest, PrefixCountGreaterMatchesScalar) {
  for (std::size_t n : kSizes) {
    util::SplitMix64 rng(67 + n);
    std::vector<std::size_t> ranges(n);
    for (auto& r : ranges) r = 1 + rng.NextBounded(1 << 14);
    std::sort(ranges.rbegin(), ranges.rend());
    for (const std::size_t bound :
         {std::size_t{0}, std::size_t{1}, std::size_t{100},
          std::size_t{1} << 13, std::size_t{1} << 20}) {
      std::size_t expect = 0;
      while (expect < n && ranges[expect] > bound) ++expect;
      ForEachCompiledLevel([&](kernels::SimdLevel level) {
        SCOPED_TRACE(std::string("level=") + kernels::SimdLevelName(level) +
                     " n=" + std::to_string(n) + " bound=" +
                     std::to_string(bound));
        EXPECT_EQ(kernels::PrefixCountGreater(ranges.data(), n, bound),
                  expect);
      });
    }
  }
}

TEST(ScanKernelsTest, SubtractArraysMatchesScalar) {
  for (std::size_t n : kSizes) {
    const std::vector<double> a = RandomDoubles(n, 71 + n);
    const std::vector<double> b = RandomDoubles(n, 73 + n);
    std::vector<double> expect(n);
    for (std::size_t i = 0; i < n; ++i) expect[i] = a[i] - b[i];
    ForEachCompiledLevel([&](kernels::SimdLevel level) {
      SCOPED_TRACE(std::string("level=") + kernels::SimdLevelName(level) +
                   " n=" + std::to_string(n));
      std::vector<double> out(n);
      kernels::SubtractArrays(a.data(), b.data(), out.data(), n);
      EXPECT_EQ(out, expect);
    });
  }
}

TEST(ScanKernelsTest, GenericScanWrappersFallBackInOrder) {
  // Concat has no scan kernel: SuffixScanValues/PrefixScanValues must run
  // the exact in-order combine recurrence.
  const std::vector<std::string> v = {"a", "b", "c", "d", "e"};
  std::vector<std::string> out(v.size());
  SuffixScanValues<Concat>(v.data(), out.data(), v.size(), std::string{});
  EXPECT_EQ(out.front(), "abcde");
  EXPECT_EQ(out.back(), "e");
  PrefixScanValues<Concat>(v.data(), out.data(), v.size(), std::string{"X"});
  EXPECT_EQ(out.front(), "Xa");
  EXPECT_EQ(out.back(), "Xabcde");
}

TEST(ScanKernelsTest, SetSimdLevelClampsToDetected) {
  const kernels::SimdLevel best = kernels::DetectSimdLevel();
  kernels::SetSimdLevel(kernels::SimdLevel::kAvx512);
  EXPECT_LE(static_cast<int>(kernels::ActiveSimdLevel()),
            static_cast<int>(best));
  const kernels::SimdLevel prev =
      kernels::SetSimdLevel(kernels::SimdLevel::kScalar);
  EXPECT_EQ(kernels::ActiveSimdLevel(), kernels::SimdLevel::kScalar);
  EXPECT_LE(static_cast<int>(prev), static_cast<int>(best));
  kernels::SetSimdLevel(best);
}

// Compile-time wiring of the batch traits.
static_assert(has_bulk_kernel<Sum>);
static_assert(has_bulk_kernel<SumInt>);
static_assert(has_bulk_kernel<SumOfSquares>);
static_assert(has_bulk_kernel<Count>);
static_assert(has_bulk_kernel<Max>);
static_assert(has_bulk_kernel<MaxInt>);
static_assert(has_bulk_kernel<Min>);
static_assert(has_bulk_kernel<MinInt>);
static_assert(!has_bulk_kernel<Concat>);
static_assert(!has_bulk_kernel<ArgMax>);
static_assert(!has_bulk_kernel<AlphaMax>);

// Scan kernels: registered for every fold-kernel op; everything else takes
// the generic in-order recurrence.
static_assert(has_scan_kernel<Sum>);
static_assert(has_scan_kernel<SumInt>);
static_assert(has_scan_kernel<SumOfSquares>);
static_assert(has_scan_kernel<Count>);
static_assert(has_scan_kernel<Max>);
static_assert(has_scan_kernel<MaxInt>);
static_assert(has_scan_kernel<Min>);
static_assert(has_scan_kernel<MinInt>);
static_assert(!has_scan_kernel<Concat>);
static_assert(!has_scan_kernel<ArgMax>);
static_assert(!has_scan_kernel<First>);

// Survivor-mask kernels: total-order min/max only — ArgMax/ArgMin keep the
// exact scalar staircase (their absorbs is strict on keys, not values).
static_assert(has_survivor_kernel<Max>);
static_assert(has_survivor_kernel<MaxInt>);
static_assert(has_survivor_kernel<Min>);
static_assert(has_survivor_kernel<MinInt>);
static_assert(!has_survivor_kernel<ArgMax>);
static_assert(!has_survivor_kernel<ArgMin>);
static_assert(!has_survivor_kernel<AlphaMax>);

static_assert(TotalOrderSelectiveOp<Max>);
static_assert(TotalOrderSelectiveOp<Min>);
static_assert(TotalOrderSelectiveOp<MaxInt>);
static_assert(TotalOrderSelectiveOp<ArgMax>);
static_assert(TotalOrderSelectiveOp<ArgMin>);
static_assert(TotalOrderSelectiveOp<AlphaMax>);
static_assert(!TotalOrderSelectiveOp<First>);
static_assert(!TotalOrderSelectiveOp<SumInt>);
static_assert(!TotalOrderSelectiveOp<Concat>);

}  // namespace
}  // namespace slick::ops
