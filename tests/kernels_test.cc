// Vectorized fold kernels (DESIGN.md §11): the dispatchers must agree with
// a plain sequential combine loop — bit-identically for the integer and
// selective (min/max) kernels, and within an accumulated-rounding ULP bound
// for floating-point sums, whose SIMD lanes reassociate the addition. Sizes
// straddle kSimdThreshold so both the scalar and the AVX2 paths run on
// hardware that has them.

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ops/arith.h"
#include "ops/kernels.h"
#include "ops/minmax.h"
#include "ops/string_ops.h"
#include "ops/traits.h"
#include "util/rng.h"

namespace slick::ops {
namespace {

constexpr std::size_t kSizes[] = {0, 1, 7, 15, 16, 17, 64, 255, 1000};

std::vector<int64_t> RandomInts(std::size_t n, uint64_t seed) {
  util::SplitMix64 rng(seed);
  std::vector<int64_t> v(n);
  for (auto& x : v) {
    x = static_cast<int64_t>(rng.NextBounded(1u << 20)) - (1 << 19);
  }
  return v;
}

std::vector<double> RandomDoubles(std::size_t n, uint64_t seed) {
  util::SplitMix64 rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = (rng.NextDouble() - 0.5) * 1e6;
  return v;
}

TEST(KernelsTest, FoldAddInt64MatchesLoopExactly) {
  for (std::size_t n : kSizes) {
    const std::vector<int64_t> v = RandomInts(n, 17 + n);
    int64_t expect = 0;
    for (int64_t x : v) expect += x;
    EXPECT_EQ(kernels::FoldAdd(v.data(), n), expect) << "n=" << n;
  }
}

TEST(KernelsTest, FoldMaxInt64MatchesLoopExactly) {
  for (std::size_t n : kSizes) {
    const std::vector<int64_t> v = RandomInts(n, 23 + n);
    int64_t expect = MaxInt::identity();
    for (int64_t x : v) expect = MaxInt::combine(expect, x);
    EXPECT_EQ(kernels::FoldMax(v.data(), n), expect) << "n=" << n;
  }
}

TEST(KernelsTest, FoldAddDoubleWithinReassociationBound) {
  for (std::size_t n : kSizes) {
    const std::vector<double> v = RandomDoubles(n, 29 + n);
    double expect = 0.0, abs_sum = 0.0;
    for (double x : v) {
      expect += x;
      abs_sum += std::abs(x);
    }
    EXPECT_NEAR(kernels::FoldAdd(v.data(), n), expect, 1e-12 * abs_sum)
        << "n=" << n;
  }
}

TEST(KernelsTest, FoldMaxMinDoubleBitIdentical) {
  // Selective kernels never create new values: SIMD max/min must return
  // exactly what the sequential loop returns.
  for (std::size_t n : kSizes) {
    const std::vector<double> v = RandomDoubles(n, 31 + n);
    double emax = Max::identity(), emin = Min::identity();
    for (double x : v) {
      emax = Max::combine(emax, x);
      emin = Min::combine(emin, x);
    }
    EXPECT_EQ(kernels::FoldMax(v.data(), n), emax) << "n=" << n;
    EXPECT_EQ(kernels::FoldMin(v.data(), n), emin) << "n=" << n;
  }
}

TEST(KernelsTest, FoldValuesUsesKernelForKernelOps) {
  const std::vector<int64_t> v = RandomInts(100, 37);
  int64_t sum = 0, max = MaxInt::identity();
  for (int64_t x : v) {
    sum += x;
    max = MaxInt::combine(max, x);
  }
  EXPECT_EQ(FoldValues<SumInt>(v.data(), v.size()), sum);
  EXPECT_EQ(FoldValues<MaxInt>(v.data(), v.size()), max);
}

TEST(KernelsTest, FoldValuesGenericLoopPreservesOrder) {
  // Concat has no kernel: FoldValues must fall back to the in-order combine
  // loop, and the non-commutative result proves the order.
  const std::vector<std::string> v = {"a", "b", "c", "d"};
  EXPECT_EQ(FoldValues<Concat>(v.data(), v.size()), "abcd");
  EXPECT_EQ(FoldValues<Concat>(v.data(), 0), "");
}

// Compile-time wiring of the batch traits.
static_assert(has_bulk_kernel<Sum>);
static_assert(has_bulk_kernel<SumInt>);
static_assert(has_bulk_kernel<SumOfSquares>);
static_assert(has_bulk_kernel<Count>);
static_assert(has_bulk_kernel<Max>);
static_assert(has_bulk_kernel<MaxInt>);
static_assert(has_bulk_kernel<Min>);
static_assert(!has_bulk_kernel<Concat>);
static_assert(!has_bulk_kernel<ArgMax>);
static_assert(!has_bulk_kernel<AlphaMax>);

static_assert(TotalOrderSelectiveOp<Max>);
static_assert(TotalOrderSelectiveOp<Min>);
static_assert(TotalOrderSelectiveOp<MaxInt>);
static_assert(TotalOrderSelectiveOp<ArgMax>);
static_assert(TotalOrderSelectiveOp<ArgMin>);
static_assert(TotalOrderSelectiveOp<AlphaMax>);
static_assert(!TotalOrderSelectiveOp<First>);
static_assert(!TotalOrderSelectiveOp<SumInt>);
static_assert(!TotalOrderSelectiveOp<Concat>);

}  // namespace
}  // namespace slick::ops
