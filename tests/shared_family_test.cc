// Compatible-operation sharing tests (§2.3): Sum/Count/Average served from
// one (count, sum) aggregation, Max/Min/Range from one deque pair — checked
// against independent per-query brute force and for op-count savings.

#include <cmath>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "engine/shared_family.h"
#include "ops/counting.h"
#include "util/rng.h"

namespace slick::engine {
namespace {

std::vector<double> RandomStream(std::size_t n, uint64_t seed) {
  util::SplitMix64 rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = static_cast<double>(rng.NextBounded(1000));
  return v;
}

/// Brute force for a (range, slide) query of a given projection.
template <typename Fold>
std::vector<double> Brute(const std::vector<double>& stream,
                          plan::QuerySpec spec, Fold fold) {
  std::vector<double> out;
  for (std::size_t t = spec.slide; t <= stream.size(); t += spec.slide) {
    const std::size_t r = std::min<std::size_t>(spec.range, t);
    out.push_back(fold(stream.data() + t - r, r));
  }
  return out;
}

const auto kSum = [](const double* p, std::size_t n) {
  double s = 0;
  for (std::size_t i = 0; i < n; ++i) s += p[i];
  return s;
};
const auto kCount = [](const double*, std::size_t n) {
  return static_cast<double>(n);
};
const auto kAvg = [](const double* p, std::size_t n) {
  return n == 0 ? 0.0 : kSum(p, n) / static_cast<double>(n);
};
const auto kMax = [](const double* p, std::size_t n) {
  double m = p[0];
  for (std::size_t i = 1; i < n; ++i) m = std::max(m, p[i]);
  return m;
};
const auto kMin = [](const double* p, std::size_t n) {
  double m = p[0];
  for (std::size_t i = 1; i < n; ++i) m = std::min(m, p[i]);
  return m;
};
const auto kRange = [](const double* p, std::size_t n) {
  return kMax(p, n) - kMin(p, n);
};

TEST(SharedSumFamilyTest, MixedKindsMatchBruteForce) {
  const std::vector<double> stream = RandomStream(600, 11);
  const std::vector<SumFamilyQuery> queries = {
      {{40, 5}, SumFamilyKind::kSum},
      {{40, 5}, SumFamilyKind::kAverage},  // same range: shares the answer
      {{12, 3}, SumFamilyKind::kCount},
      {{25, 5}, SumFamilyKind::kAverage},
  };
  SharedSumFamilyEngine eng(queries, plan::Pat::kPairs);

  std::vector<std::vector<double>> got(queries.size());
  for (double x : stream) {
    eng.Push(x, [&](uint32_t q, double a) { got[q].push_back(a); });
  }

  EXPECT_EQ(got[0], Brute(stream, queries[0].spec, kSum));
  EXPECT_EQ(got[2], Brute(stream, queries[2].spec, kCount));
  const auto avg1 = Brute(stream, queries[1].spec, kAvg);
  const auto avg3 = Brute(stream, queries[3].spec, kAvg);
  ASSERT_EQ(got[1].size(), avg1.size());
  for (std::size_t i = 0; i < avg1.size(); ++i) {
    EXPECT_NEAR(got[1][i], avg1[i], 1e-9);
  }
  ASSERT_EQ(got[3].size(), avg3.size());
  for (std::size_t i = 0; i < avg3.size(); ++i) {
    EXPECT_NEAR(got[3][i], avg3[i], 1e-9);
  }
}

TEST(SharedSumFamilyTest, EqualRangesShareOneRunningAnswer) {
  // Three kinds over the SAME range collapse to one distinct range in the
  // underlying SlickDeque (Inv): the §2.3 sharing win.
  const std::vector<SumFamilyQuery> queries = {
      {{64, 8}, SumFamilyKind::kSum},
      {{64, 4}, SumFamilyKind::kCount},
      {{64, 2}, SumFamilyKind::kAverage},
  };
  SharedSumFamilyEngine eng(queries, plan::Pat::kPairs);
  EXPECT_EQ(eng.plan().distinct_ranges().size(), 1u);
}

TEST(SharedMinMaxFamilyTest, MixedKindsMatchBruteForce) {
  const std::vector<double> stream = RandomStream(600, 13);
  const std::vector<MinMaxFamilyQuery> queries = {
      {{30, 5}, MinMaxFamilyKind::kMax},
      {{30, 5}, MinMaxFamilyKind::kRange},
      {{14, 2}, MinMaxFamilyKind::kMin},
      {{50, 10}, MinMaxFamilyKind::kRange},
  };
  SharedMinMaxFamilyEngine eng(queries, plan::Pat::kPairs);

  std::vector<std::vector<double>> got(queries.size());
  for (double x : stream) {
    eng.Push(x, [&](uint32_t q, double a) { got[q].push_back(a); });
  }

  EXPECT_EQ(got[0], Brute(stream, queries[0].spec, kMax));
  EXPECT_EQ(got[1], Brute(stream, queries[1].spec, kRange));
  EXPECT_EQ(got[2], Brute(stream, queries[2].spec, kMin));
  EXPECT_EQ(got[3], Brute(stream, queries[3].spec, kRange));
}

TEST(SharedMinMaxFamilyTest, WarmupRangeIsZeroBeforeData) {
  // During warm-up the identity-padded window yields Max = -inf and
  // Min = +inf only when NO real tuple is in range; with slide >= 1 every
  // report sees at least one tuple, so Range stays finite.
  SharedMinMaxFamilyEngine eng({{{8, 2}, MinMaxFamilyKind::kRange}},
                               plan::Pat::kPairs);
  std::vector<double> answers;
  for (double x : {5.0, 5.0, 5.0, 5.0}) {
    eng.Push(x, [&](uint32_t, double a) { answers.push_back(a); });
  }
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_DOUBLE_EQ(answers[0], 0.0);
  EXPECT_DOUBLE_EQ(answers[1], 0.0);
}

TEST(SharedSumFamilyTest, SharingSavesOperationsVersusSeparateEngines) {
  // The quantitative §2.3 claim: three compatible kinds over one range cost
  // the same ⊕/⊖ budget as ONE of them run alone.
  using COp = ops::CountingOp<ops::SumCount>;
  const std::vector<double> stream = RandomStream(512, 17);

  auto measure = [&](const std::vector<plan::QuerySpec>& specs) {
    AcqEngine<core::SlickDequeInv<COp>> eng(specs, plan::Pat::kPairs);
    ops::OpCounter::Reset();
    for (double x : stream) {
      eng.Push(x, [](uint32_t, const ops::AvgPartial&) {});
    }
    return ops::OpCounter::Total();
  };

  const uint64_t one_query = measure({{64, 8}});
  // Three queries with the same (range, slide) — in the family engine these
  // are a Sum, a Count and an Average — cost exactly the ⊕/⊖ budget of one:
  // the shared (count, sum) answer serves all three projections.
  const uint64_t three_kinds = measure({{64, 8}, {64, 8}, {64, 8}});
  EXPECT_EQ(three_kinds, one_query);
  // Running them as three independent engines would triple the budget.
  EXPECT_EQ(3 * one_query, three_kinds * 3);
}

}  // namespace
}  // namespace slick::engine
