// End-to-end integration: the full pipeline a deployment would run —
// out-of-order sensor stream -> reorder buffer -> per-key event-time
// windows + a shared multi-ACQ engine -> answers, with a checkpoint/restore
// in the middle. Everything is validated against brute-force models.

#include <cstdint>
#include <deque>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/monotonic_deque.h"
#include "core/slick_deque_inv.h"
#include "core/time_window.h"
#include "engine/acq_engine.h"
#include "engine/keyed_engine.h"
#include "ops/arith.h"
#include "ops/minmax.h"
#include "stream/reorder.h"
#include "stream/synthetic.h"
#include "util/rng.h"

namespace slick {
namespace {

TEST(IntegrationTest, ReorderedSensorStreamThroughKeyedTimeWindows) {
  // Three sensor channels, events shuffled within a bounded horizon, then
  // reordered and routed into per-channel event-time Max windows.
  constexpr uint64_t kHorizon = 8;
  constexpr uint64_t kRange = 50;  // time units
  stream::SyntheticSensorSource source(3);

  struct Event {
    uint64_t seq;
    uint64_t key;
    double value;
  };
  std::vector<Event> events;
  for (uint64_t t = 0; t < 3000; ++t) {
    const auto tup = source.Next();
    events.push_back({t, t % 3, tup.energy[t % 3]});
  }
  // Bounded block shuffle.
  util::SplitMix64 rng(9);
  for (std::size_t lo = 0; lo < events.size(); lo += kHorizon) {
    const std::size_t hi = std::min(lo + kHorizon, events.size());
    for (std::size_t i = hi - 1; i > lo; --i) {
      std::swap(events[i], events[lo + rng.NextBounded(i - lo + 1)]);
    }
  }

  stream::ReorderBuffer<Event> reorder(kHorizon);
  std::map<uint64_t, core::TimeWindow<core::MonotonicDeque<ops::Max>>> windows;
  std::map<uint64_t, std::deque<std::pair<uint64_t, double>>> model;

  auto feed = [&](uint64_t, Event e) {
    auto [it, inserted] = windows.try_emplace(e.key, kRange);
    it->second.Observe(e.seq, e.value);
    auto& dq = model[e.key];
    dq.emplace_back(e.seq, e.value);
    while (!dq.empty() && dq.front().first + kRange <= e.seq) dq.pop_front();
    double expect = -1e300;
    for (const auto& [ts, v] : dq) expect = std::max(expect, v);
    ASSERT_DOUBLE_EQ(it->second.query(), expect) << "key=" << e.key;
  };
  for (const Event& e : events) {
    ASSERT_EQ(reorder.Offer(e.seq, e, feed), stream::Admission::kAdmitted);
  }
  reorder.Flush(feed);
  EXPECT_EQ(windows.size(), 3u);
}

TEST(IntegrationTest, EngineSurvivesCheckpointRestoreMidStream) {
  // A shared-plan engine whose aggregator is checkpointed mid-stream; a
  // recovered engine (fresh engine + restored aggregator state) must
  // produce identical answers from that point on. The engine's plan
  // position is recovered by aligning the checkpoint to a composite-slide
  // boundary, exactly what a DSMS checkpointing at epoch boundaries does.
  using Agg = core::SlickDequeInv<ops::SumInt>;
  const std::vector<plan::QuerySpec> queries = {{24, 4}, {10, 2}};
  engine::AcqEngine<Agg> original(queries, plan::Pat::kPairs);

  util::SplitMix64 rng(11);
  std::vector<int64_t> stream(600);
  for (auto& v : stream) v = static_cast<int64_t>(rng.NextBounded(1000));

  // Run to a composite boundary (composite slide = 4): tuple 400.
  std::vector<std::pair<uint32_t, int64_t>> tail_original;
  for (std::size_t t = 0; t < 400; ++t) {
    original.Push(stream[t], [](uint32_t, int64_t) {});
  }
  std::stringstream checkpoint;
  original.aggregator().SaveState(checkpoint);

  // Crash. Recover: fresh engine positioned at the same stream offset with
  // the aggregator state restored.
  engine::AcqEngine<Agg> recovered(queries, plan::Pat::kPairs,
                                   /*stream_offset=*/400);
  ASSERT_TRUE(recovered.mutable_aggregator().LoadState(checkpoint));

  std::vector<std::pair<uint32_t, int64_t>> tail_recovered;
  for (std::size_t t = 400; t < stream.size(); ++t) {
    original.Push(stream[t], [&](uint32_t q, int64_t a) {
      tail_original.emplace_back(q, a);
    });
    recovered.Push(stream[t], [&](uint32_t q, int64_t a) {
      tail_recovered.emplace_back(q, a);
    });
  }
  EXPECT_FALSE(tail_original.empty());
  EXPECT_EQ(tail_original, tail_recovered);
}

}  // namespace
}  // namespace slick
