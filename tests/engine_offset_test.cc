// AcqEngine stream_offset semantics: an engine positioned at offset o must
// behave exactly like an engine run from stream start over o identity
// tuples followed by the same data — for every offset, including
// mid-partial ones.

#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/slick_deque_inv.h"
#include "engine/acq_engine.h"
#include "ops/arith.h"
#include "util/rng.h"

namespace slick::engine {
namespace {

TEST(EngineOffsetTest, OffsetEqualsIdentityPaddedRunForEveryPhase) {
  // Queries with fragments: composite slide 6, partial lengths {2, 1, 1, 2}.
  const std::vector<plan::QuerySpec> queries = {{4, 2}, {6, 3}};
  util::SplitMix64 rng(1);
  std::vector<int64_t> data(200);
  for (auto& v : data) v = static_cast<int64_t>(rng.NextBounded(1000));

  for (uint64_t offset = 0; offset <= 14; ++offset) {
    // Reference: a zero-padded run from stream start (identity for SumInt
    // is 0, so padding with zeros reproduces the offset semantics).
    AcqEngine<core::SlickDequeInv<ops::SumInt>> padded(queries,
                                                       plan::Pat::kPairs);
    std::vector<std::pair<uint32_t, int64_t>> want;
    for (uint64_t i = 0; i < offset; ++i) {
      padded.Push(0, [](uint32_t, int64_t) {});  // discard padding answers
    }
    for (int64_t v : data) {
      padded.Push(v, [&](uint32_t q, int64_t a) { want.emplace_back(q, a); });
    }

    AcqEngine<core::SlickDequeInv<ops::SumInt>> offset_engine(
        queries, plan::Pat::kPairs, offset);
    std::vector<std::pair<uint32_t, int64_t>> got;
    for (int64_t v : data) {
      offset_engine.Push(
          v, [&](uint32_t q, int64_t a) { got.emplace_back(q, a); });
    }
    ASSERT_EQ(got, want) << "offset=" << offset;
  }
}

TEST(EngineOffsetTest, OffsetBeyondCompositeWraps) {
  const std::vector<plan::QuerySpec> queries = {{8, 4}};
  AcqEngine<core::SlickDequeInv<ops::SumInt>> a(queries, plan::Pat::kPairs,
                                                3);
  AcqEngine<core::SlickDequeInv<ops::SumInt>> b(queries, plan::Pat::kPairs,
                                                3 + 12);  // + 3 composites
  std::vector<int64_t> answers_a, answers_b;
  for (int64_t v = 1; v <= 40; ++v) {
    a.Push(v, [&](uint32_t, int64_t x) { answers_a.push_back(x); });
    b.Push(v, [&](uint32_t, int64_t x) { answers_b.push_back(x); });
  }
  EXPECT_EQ(answers_a, answers_b);
}

}  // namespace
}  // namespace slick::engine
