// Checkpoint/restore tests (DSMS fault tolerance): every serializable
// structure must round-trip mid-stream and then behave *identically* to the
// uninterrupted original — byte-for-byte answers over the rest of the
// stream — plus corruption rejection.

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/monotonic_deque.h"
#include "core/slick_deque_inv.h"
#include "core/slick_deque_noninv.h"
#include "core/subtract_on_evict.h"
#include "ops/arith.h"
#include "ops/minmax.h"
#include "ops/string_ops.h"
#include "util/rng.h"
#include "util/serde.h"
#include "window/chunked_array_queue.h"
#include "window/daba.h"
#include "window/flat_fat.h"
#include "window/flat_fit.h"
#include "window/naive.h"
#include "window/two_stacks.h"

namespace slick {
namespace {

// ---------------------------------------------------------------------------
// Serde primitives.
// ---------------------------------------------------------------------------

TEST(SerdeTest, PodRoundTrip) {
  std::stringstream ss;
  util::WritePod<int64_t>(ss, -42);
  util::WritePod<double>(ss, 3.25);
  int64_t i = 0;
  double d = 0;
  EXPECT_TRUE(util::ReadPod(ss, &i));
  EXPECT_TRUE(util::ReadPod(ss, &d));
  EXPECT_EQ(i, -42);
  EXPECT_DOUBLE_EQ(d, 3.25);
  EXPECT_FALSE(util::ReadPod(ss, &i));  // exhausted
}

TEST(SerdeTest, PodVecRoundTrip) {
  std::stringstream ss;
  const std::vector<uint32_t> v = {1, 2, 3, 4, 5};
  util::WritePodVec(ss, v);
  std::vector<uint32_t> w;
  EXPECT_TRUE(util::ReadPodVec(ss, &w));
  EXPECT_EQ(w, v);
}

TEST(SerdeTest, TagMismatchRejected) {
  std::stringstream ss;
  util::WriteTag(ss, util::MakeTag('A', 'B', 'C', '1'), 1);
  EXPECT_FALSE(util::ExpectTag(ss, util::MakeTag('A', 'B', 'C', '2'), 1));
  std::stringstream ss2;
  util::WriteTag(ss2, util::MakeTag('A', 'B', 'C', '1'), 1);
  EXPECT_FALSE(util::ExpectTag(ss2, util::MakeTag('A', 'B', 'C', '1'), 2));
}

TEST(SerdeTest, CorruptVecCountRejected) {
  std::stringstream ss;
  util::WritePod<uint64_t>(ss, UINT64_MAX);  // absurd element count
  std::vector<double> v;
  EXPECT_FALSE(util::ReadPodVec(ss, &v));
}

// ---------------------------------------------------------------------------
// Queue round trip, including sequence numbering.
// ---------------------------------------------------------------------------

TEST(CheckpointTest, ChunkedArrayQueuePreservesSequences) {
  window::ChunkedArrayQueue<int64_t> q(8);
  for (int64_t i = 0; i < 100; ++i) q.push_back(i);
  for (int i = 0; i < 37; ++i) q.pop_front();
  std::stringstream ss;
  q.SaveState(ss);
  window::ChunkedArrayQueue<int64_t> r(64);  // different chunking: replaced
  ASSERT_TRUE(r.LoadState(ss));
  EXPECT_EQ(r.front_seq(), q.front_seq());
  EXPECT_EQ(r.end_seq(), q.end_seq());
  EXPECT_EQ(r.chunk_capacity(), q.chunk_capacity());
  for (uint64_t s = q.front_seq(); s < q.end_seq(); ++s) {
    ASSERT_EQ(r[s], q[s]);
  }
  r.push_back(12345);
  EXPECT_EQ(r.back(), 12345);
}

// ---------------------------------------------------------------------------
// Generic fixed-window round trip: snapshot at T, diverge-check to T+N.
// ---------------------------------------------------------------------------

template <typename Agg, typename MakeAgg>
void RunFixedWindowRoundTrip(MakeAgg make, uint64_t seed) {
  using Op = typename Agg::op_type;
  Agg original = make();
  util::SplitMix64 rng(seed);
  for (int i = 0; i < 137; ++i) {
    original.slide(Op::lift(static_cast<typename Op::input_type>(
        static_cast<int64_t>(rng.NextBounded(10000)))));
  }
  std::stringstream ss;
  original.SaveState(ss);
  Agg restored = make();
  ASSERT_TRUE(restored.LoadState(ss));
  for (int i = 0; i < 200; ++i) {
    const auto v = Op::lift(static_cast<typename Op::input_type>(
        static_cast<int64_t>(rng.NextBounded(10000))));
    original.slide(v);
    restored.slide(v);
    ASSERT_EQ(original.query(), restored.query()) << "i=" << i;
  }
}

TEST(CheckpointTest, NaiveWindow) {
  RunFixedWindowRoundTrip<window::NaiveWindow<ops::SumInt>>(
      [] { return window::NaiveWindow<ops::SumInt>(31); }, 1);
}
TEST(CheckpointTest, FlatFat) {
  RunFixedWindowRoundTrip<window::FlatFat<ops::SumInt>>(
      [] { return window::FlatFat<ops::SumInt>(31); }, 2);
}
TEST(CheckpointTest, FlatFit) {
  RunFixedWindowRoundTrip<window::FlatFit<ops::SumInt>>(
      [] { return window::FlatFit<ops::SumInt>(31); }, 3);
}
TEST(CheckpointTest, SlickDequeNonInv) {
  RunFixedWindowRoundTrip<core::SlickDequeNonInv<ops::MaxInt>>(
      [] { return core::SlickDequeNonInv<ops::MaxInt>(31); }, 4);
}

TEST(CheckpointTest, SlickDequeInvWithRanges) {
  using Agg = core::SlickDequeInv<ops::SumInt>;
  Agg original(31, {31, 7, 3});
  util::SplitMix64 rng(5);
  for (int i = 0; i < 100; ++i) {
    original.slide(static_cast<int64_t>(rng.NextBounded(1000)));
  }
  std::stringstream ss;
  original.SaveState(ss);
  Agg restored(1);  // ranges come from the checkpoint
  ASSERT_TRUE(restored.LoadState(ss));
  EXPECT_TRUE(restored.has_range(7));
  for (int i = 0; i < 150; ++i) {
    const int64_t v = static_cast<int64_t>(rng.NextBounded(1000));
    original.slide(v);
    restored.slide(v);
    for (std::size_t r : {std::size_t{3}, std::size_t{7}, std::size_t{31}}) {
      ASSERT_EQ(original.query(r), restored.query(r));
    }
  }
}

// ---------------------------------------------------------------------------
// FIFO aggregators, including DABA's region pointers.
// ---------------------------------------------------------------------------

template <typename Agg>
void RunFifoRoundTrip(uint64_t seed) {
  using Op = typename Agg::op_type;
  Agg original;
  util::SplitMix64 rng(seed);
  for (int i = 0; i < 150; ++i) {
    if (original.size() >= 24) original.evict();
    original.insert(
        Op::lift(static_cast<int64_t>(rng.NextBounded(10000))));
  }
  std::stringstream ss;
  original.SaveState(ss);
  Agg restored;
  ASSERT_TRUE(restored.LoadState(ss));
  ASSERT_EQ(restored.size(), original.size());
  for (int i = 0; i < 300; ++i) {
    const auto v = Op::lift(static_cast<int64_t>(rng.NextBounded(10000)));
    if (original.size() >= 24) {
      original.evict();
      restored.evict();
    }
    original.insert(v);
    restored.insert(v);
    ASSERT_EQ(original.query(), restored.query()) << "i=" << i;
  }
}

TEST(CheckpointTest, TwoStacks) { RunFifoRoundTrip<window::TwoStacks<ops::SumInt>>(6); }
TEST(CheckpointTest, SubtractOnEvict) {
  RunFifoRoundTrip<core::SubtractOnEvict<ops::SumInt>>(7);
}
TEST(CheckpointTest, MonotonicDeque) {
  RunFifoRoundTrip<core::MonotonicDeque<ops::MaxInt>>(8);
}

TEST(CheckpointTest, DabaRestoresRegionPointers) {
  RunFifoRoundTrip<window::Daba<ops::SumInt>>(9);
  // And the restored instance satisfies the full region invariants.
  window::Daba<ops::SumInt> original;
  util::SplitMix64 rng(10);
  for (int i = 0; i < 77; ++i) {
    if (original.size() >= 16) original.evict();
    original.insert(static_cast<int64_t>(rng.NextBounded(100)));
  }
  std::stringstream ss;
  original.SaveState(ss);
  window::Daba<ops::SumInt> restored;
  ASSERT_TRUE(restored.LoadState(ss));
  EXPECT_TRUE(restored.CheckInvariants());
}

// ---------------------------------------------------------------------------
// Corruption handling.
// ---------------------------------------------------------------------------

TEST(CheckpointTest, TruncatedStreamRejected) {
  window::FlatFat<ops::SumInt> agg(16);
  for (int64_t i = 0; i < 20; ++i) agg.slide(i);
  std::stringstream ss;
  agg.SaveState(ss);
  const std::string full = ss.str();
  for (std::size_t cut : {std::size_t{0}, std::size_t{4}, full.size() / 2,
                          full.size() - 1}) {
    std::stringstream truncated(full.substr(0, cut));
    window::FlatFat<ops::SumInt> fresh(16);
    EXPECT_FALSE(fresh.LoadState(truncated)) << "cut=" << cut;
  }
}

// ---------------------------------------------------------------------------
// SlickDeque (Non-Inv) payload validation: the header checks alone used to
// accept a corrupt deque (node pos >= window, non-monotone ages, absorbed
// values), which later poisons AgeOf()/expiry. LoadState must cross-validate
// the restored nodes.
//
// SDN1/CAQ1 byte layout (versioned, so these offsets are stable):
//   [0]  SDN1 tag+version (8)   [8] window u64   [16] pos u64   [24] cur u64
//   [32] CAQ1 tag+version (8)   [40] shift u32   [44] head u64  [52] tail u64
//   [60] nodes, 16 bytes each: {pos u64, val i64}
// ---------------------------------------------------------------------------

std::string SaveNonInvMax(core::SlickDequeNonInv<ops::MaxInt>& agg) {
  std::stringstream ss;
  agg.SaveState(ss);
  return ss.str();
}

bool LoadNonInvMax(const std::string& bytes) {
  std::stringstream ss(bytes);
  core::SlickDequeNonInv<ops::MaxInt> fresh(8);
  return fresh.LoadState(ss);
}

class NonInvPayloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Strictly descending input keeps every node: pos 0..7, vals 100..93,
    // pos_ = 0, cur_ = 7 (head legitimately sits at the write position).
    core::SlickDequeNonInv<ops::MaxInt> agg(8);
    for (int64_t i = 0; i < 8; ++i) agg.slide(100 - i);
    bytes_ = SaveNonInvMax(agg);
  }
  static constexpr std::size_t kNodes = 60;  // first node's offset
  std::string bytes_;
};

TEST_F(NonInvPayloadTest, IntactPayloadRoundTrips) {
  // Baseline: the unmodified checkpoint — including a head node at pos_,
  // which is a genuine full-window state — must still be accepted.
  EXPECT_TRUE(LoadNonInvMax(bytes_));
}

TEST_F(NonInvPayloadTest, NodePosBeyondWindowRejected) {
  std::string corrupt = bytes_;
  corrupt[kNodes] = 0x09;  // head node pos: 0 -> 9, but window is 8
  EXPECT_FALSE(LoadNonInvMax(corrupt));
}

TEST_F(NonInvPayloadTest, NonMonotoneAgesRejected) {
  std::string corrupt = bytes_;
  // Swap the first two nodes: ages go 6, 7, ... instead of 7, 6, ...
  for (std::size_t i = 0; i < 16; ++i) {
    std::swap(corrupt[kNodes + i], corrupt[kNodes + 16 + i]);
  }
  EXPECT_FALSE(LoadNonInvMax(corrupt));
}

TEST_F(NonInvPayloadTest, AbsorbedValueRejected) {
  std::string corrupt = bytes_;
  // Bit-flip the second node's value from 99 to 227 (> the head's 100):
  // slide() would have popped the head, so the pair proves corruption.
  corrupt[kNodes + 16 + 8] = static_cast<char>(0xE3);
  EXPECT_FALSE(LoadNonInvMax(corrupt));
}

TEST_F(NonInvPayloadTest, RejectedLoadLeavesTargetUntouched) {
  // A failed LoadState must not half-commit: the target keeps answering
  // from its own pre-load window, not from the rejected payload's nodes.
  core::SlickDequeNonInv<ops::MaxInt> agg(4);
  for (int64_t v : {7, 3, 5}) agg.slide(v);
  std::string corrupt = bytes_;
  corrupt[kNodes + 16 + 8] = static_cast<char>(0xE3);
  std::stringstream ss(corrupt);
  ASSERT_FALSE(agg.LoadState(ss));
  EXPECT_EQ(agg.query(), 7);
  agg.slide(9);
  EXPECT_EQ(agg.query(), 9);
}

TEST_F(NonInvPayloadTest, TailNotAtNewestPositionRejected) {
  // A sparser deque: nodes at pos {0, 1, 2, 5} after 40 absorbs 10 and 5.
  core::SlickDequeNonInv<ops::MaxInt> agg(8);
  for (int64_t v : {100, 90, 50, 10, 5, 40}) agg.slide(v);
  std::string corrupt = SaveNonInvMax(agg);
  // Advance the header's pos_/cur_ by one (pos 6 -> 7, cur 5 -> 6): node
  // ages stay strictly decreasing, but the tail node (pos 5) no longer
  // matches cur — slide() always appends the newest partial at cur.
  corrupt[16] = 0x07;
  corrupt[24] = 0x06;
  EXPECT_FALSE(LoadNonInvMax(corrupt));
}

TEST_F(NonInvPayloadTest, EmptyDequeWithNonzeroCursorRejected) {
  core::SlickDequeNonInv<ops::MaxInt> pristine(8);
  std::string corrupt = SaveNonInvMax(pristine);
  EXPECT_TRUE(LoadNonInvMax(corrupt));  // pristine round trip is fine
  corrupt[16] = 0x01;  // pos_ = 1 with an empty deque: impossible state
  EXPECT_FALSE(LoadNonInvMax(corrupt));
}

TEST_F(NonInvPayloadTest, TruncatedPayloadRejected) {
  for (std::size_t cut :
       {std::size_t{0}, std::size_t{12}, std::size_t{33}, std::size_t{59},
        kNodes + 5, bytes_.size() - 1}) {
    EXPECT_FALSE(LoadNonInvMax(bytes_.substr(0, cut))) << "cut=" << cut;
  }
}

TEST(CheckpointTest, WrongStructureTagRejected) {
  window::NaiveWindow<ops::SumInt> naive(8);
  naive.slide(1);
  std::stringstream ss;
  naive.SaveState(ss);
  window::FlatFat<ops::SumInt> fat(8);
  EXPECT_FALSE(fat.LoadState(ss));  // NAI1 tag, FAT1 expected
}

// ---------------------------------------------------------------------------
// CRC32-framed checkpoint container (DESIGN.md §12.2): magic + version +
// length + CRC around every SaveState payload, with typed errors that
// distinguish truncation from bit rot from foreign bytes — and a
// compatibility read for the unframed PR 1 streams.
//
// Frame layout: [0] magic 'SLKF' u32  [4] version u32  [8] payload len u64
//               [16] crc32 u32        [20] payload bytes.
// ---------------------------------------------------------------------------

TEST(FramedSerdeTest, Crc32KnownAnswer) {
  // The IEEE 802.3 check value: CRC32("123456789") == 0xCBF43926.
  EXPECT_EQ(util::Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(util::Crc32(""), 0u);
}

TEST(FramedSerdeTest, FrameRoundTrip) {
  std::stringstream ss;
  util::WriteFramed(ss, "hello, frames");
  std::string payload;
  EXPECT_EQ(util::ReadFramed(ss, &payload), util::FrameError::kOk);
  EXPECT_EQ(payload, "hello, frames");
}

TEST(FramedSerdeTest, TypedErrorsDistinguishCorruptionModes) {
  std::stringstream ss;
  util::WriteFramed(ss, "payload bytes under test");
  const std::string frame = ss.str();
  std::string out;

  {  // Foreign bytes: wrong magic.
    std::string bad = frame;
    bad[0] ^= 0x01;
    std::stringstream in(bad);
    EXPECT_EQ(util::ReadFramed(in, &out), util::FrameError::kBadMagic);
  }
  {  // Right container, future version.
    std::string bad = frame;
    bad[4] ^= 0x02;
    std::stringstream in(bad);
    EXPECT_EQ(util::ReadFramed(in, &out), util::FrameError::kBadVersion);
  }
  {  // Single bit flip in the payload: CRC catches it.
    std::string bad = frame;
    bad[20] ^= 0x10;
    std::stringstream in(bad);
    EXPECT_EQ(util::ReadFramed(in, &out), util::FrameError::kCrcMismatch);
  }
  {  // Single bit flip in the stored CRC itself.
    std::string bad = frame;
    bad[16] ^= 0x40;
    std::stringstream in(bad);
    EXPECT_EQ(util::ReadFramed(in, &out), util::FrameError::kCrcMismatch);
  }
  // Truncation at every boundary: header, length, CRC, mid-payload.
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, std::size_t{9},
                          std::size_t{17}, frame.size() - 1}) {
    std::stringstream in(frame.substr(0, cut));
    EXPECT_EQ(util::ReadFramed(in, &out), util::FrameError::kTruncated)
        << "cut=" << cut;
  }
  {  // Absurd payload length is truncation, not an allocation attempt.
    std::string bad = frame;
    for (std::size_t i = 8; i < 16; ++i) bad[i] = static_cast<char>(0xFF);
    std::stringstream in(bad);
    EXPECT_EQ(util::ReadFramed(in, &out), util::FrameError::kTruncated);
  }
  EXPECT_STREQ(util::FrameErrorName(util::FrameError::kCrcMismatch),
               "crc-mismatch");
}

TEST(FramedSerdeTest, SaveStateFramedRoundTrip) {
  window::FlatFat<ops::SumInt> agg(16);
  for (int64_t i = 0; i < 20; ++i) agg.slide(i);
  std::stringstream ss;
  util::SaveStateFramed(agg, ss);
  window::FlatFat<ops::SumInt> fresh(16);
  EXPECT_EQ(util::LoadStateFramed(&fresh, ss), util::FrameError::kOk);
  for (int64_t i = 0; i < 40; ++i) {
    agg.slide(i * 3);
    fresh.slide(i * 3);
    ASSERT_EQ(agg.query(), fresh.query());
  }
}

TEST(FramedSerdeTest, FramedLoadRejectsFlippedBit) {
  core::SlickDequeNonInv<ops::MaxInt> agg(8);
  for (int64_t i = 0; i < 8; ++i) agg.slide(100 - i);
  std::stringstream ss;
  util::SaveStateFramed(agg, ss);
  std::string frame = ss.str();
  // Flip one payload bit the structural validators would NOT catch (a value
  // byte): the frame CRC must reject it anyway.
  frame[frame.size() - 3] ^= 0x04;
  std::stringstream in(frame);
  core::SlickDequeNonInv<ops::MaxInt> fresh(8);
  EXPECT_EQ(util::LoadStateFramed(&fresh, in),
            util::FrameError::kCrcMismatch);
}

TEST(FramedSerdeTest, LegacyUnframedStreamStillLoads) {
  // A PR 1 checkpoint has no frame: LoadStateFramed must detect the missing
  // magic, rewind, and delegate to the raw LoadState path.
  window::NaiveWindow<ops::SumInt> agg(8);
  for (int64_t i = 0; i < 12; ++i) agg.slide(i);
  std::stringstream legacy;
  agg.SaveState(legacy);  // unframed, exactly as PR 1 wrote it
  window::NaiveWindow<ops::SumInt> fresh(8);
  EXPECT_EQ(util::LoadStateFramed(&fresh, legacy), util::FrameError::kOk);
  EXPECT_EQ(fresh.query(), agg.query());
}

// ---------------------------------------------------------------------------
// Non-POD checkpoint values: AlphaMax aggregates are std::string, so its
// SlickDeque (Non-Inv) checkpoint exercises the length-prefixed WriteVal
// path through both the node deque (ChunkedArrayQueue) and the Node
// pos/value pairs.
// ---------------------------------------------------------------------------

TEST(CheckpointTest, AlphaMaxStringStateRoundTrips) {
  using Agg = core::SlickDequeNonInv<ops::AlphaMax>;
  const char* words[] = {"pear",  "apple", "quince", "fig",   "mango",
                         "grape", "kiwi",  "plum",   "peach", "lime"};
  Agg original(5);
  util::SplitMix64 rng(77);
  for (int i = 0; i < 137; ++i) {
    original.slide(std::string(words[rng.NextBounded(10)]));
  }
  std::stringstream ss;
  original.SaveState(ss);
  Agg restored(5);
  ASSERT_TRUE(restored.LoadState(ss));
  EXPECT_EQ(restored.query(), original.query());
  for (int i = 0; i < 200; ++i) {
    const std::string v(words[rng.NextBounded(10)]);
    original.slide(v);
    restored.slide(v);
    ASSERT_EQ(original.query(), restored.query()) << "i=" << i;
  }
}

TEST(SerdeTest, StringValRoundTrip) {
  std::stringstream ss;
  util::WriteVal(ss, std::string("alpha"));
  util::WriteVal(ss, std::string());  // empty string round-trips too
  util::WriteVal(ss, std::string(1000, 'x'));
  std::string a, b, c;
  EXPECT_TRUE(util::ReadVal(ss, &a));
  EXPECT_TRUE(util::ReadVal(ss, &b));
  EXPECT_TRUE(util::ReadVal(ss, &c));
  EXPECT_EQ(a, "alpha");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c, std::string(1000, 'x'));
  EXPECT_FALSE(util::ReadVal(ss, &a));  // exhausted
}

TEST(SerdeTest, CorruptStringLengthRejected) {
  std::stringstream ss;
  util::WritePod<uint64_t>(ss, UINT64_MAX);  // absurd string length
  std::string s;
  EXPECT_FALSE(util::ReadVal(ss, &s));
}

}  // namespace
}  // namespace slick
