// Type-erased runtime API tests: AnyWindowAggregator must agree with the
// compile-time facade for every OpKind, and the per-query adapter must
// answer multi-range queries like the natively multi-query algorithms.

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/any_aggregator.h"
#include "core/per_query_adapter.h"
#include "core/slick_deque_noninv.h"
#include "ops/ops.h"
#include "util/rng.h"
#include "window/daba.h"
#include "window/two_stacks.h"

namespace slick::core {
namespace {

TEST(OpKindTest, ParseRoundTrip) {
  for (OpKind k : {OpKind::kSum, OpKind::kCount, OpKind::kProduct,
                   OpKind::kSumOfSquares, OpKind::kAverage, OpKind::kStdDev,
                   OpKind::kGeoMean, OpKind::kMax, OpKind::kMin,
                   OpKind::kRange}) {
    OpKind parsed;
    ASSERT_TRUE(ParseOpKind(ToString(k), &parsed)) << ToString(k);
    EXPECT_EQ(parsed, k);
  }
  OpKind parsed;
  EXPECT_FALSE(ParseOpKind("median", &parsed));  // holistic: unsupported
  EXPECT_FALSE(ParseOpKind("", &parsed));
}

TEST(AnyWindowAggregatorTest, AllKindsMatchBruteForce) {
  const std::size_t window = 32;
  util::SplitMix64 rng(21);
  std::vector<double> stream(200);
  for (double& x : stream) {
    x = 1.0 + static_cast<double>(rng.NextBounded(100));  // positive: geo/prod
  }

  auto brute = [&](OpKind kind, std::size_t end) {
    const std::size_t lo = end >= window ? end - window : 0;
    const std::size_t n = end - lo;
    double sum = 0, sum_sq = 0, log_sum = 0;
    double mx = -1e300, mn = 1e300;
    for (std::size_t i = lo; i < end; ++i) {
      sum += stream[i];
      sum_sq += stream[i] * stream[i];
      log_sum += std::log(stream[i]);
      mx = std::max(mx, stream[i]);
      mn = std::min(mn, stream[i]);
    }
    const double dn = static_cast<double>(n);
    switch (kind) {
      case OpKind::kSum: return sum;
      case OpKind::kCount: return dn;
      case OpKind::kProduct: return std::exp(log_sum);
      case OpKind::kSumOfSquares: return sum_sq;
      case OpKind::kAverage: return sum / dn;
      case OpKind::kStdDev: {
        const double var = sum_sq / dn - (sum / dn) * (sum / dn);
        return var <= 0 ? 0.0 : std::sqrt(var);
      }
      case OpKind::kGeoMean: return std::exp(log_sum / dn);
      case OpKind::kMax: return mx;
      case OpKind::kMin: return mn;
      case OpKind::kRange: return mx - mn;
    }
    return 0.0;
  };

  for (OpKind kind : {OpKind::kSum, OpKind::kSumOfSquares, OpKind::kAverage,
                      OpKind::kStdDev, OpKind::kGeoMean, OpKind::kMax,
                      OpKind::kMin, OpKind::kRange}) {
    AnyWindowAggregator agg = AnyWindowAggregator::Make(kind, window);
    EXPECT_EQ(agg.kind(), kind);
    EXPECT_EQ(agg.window_size(), window);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      agg.slide(stream[i]);
      if (i + 1 < window) continue;  // skip identity-padded warm-up
      const double expect = brute(kind, i + 1);
      const double got = agg.query();
      ASSERT_NEAR(got, expect, 1e-6 * std::max(1.0, std::fabs(expect)))
          << ToString(kind) << " i=" << i;
    }
  }
}

TEST(AnyWindowAggregatorTest, CountKindCountsWindow) {
  AnyWindowAggregator agg = AnyWindowAggregator::Make(OpKind::kCount, 4);
  for (int i = 0; i < 10; ++i) agg.slide(1.0);
  EXPECT_DOUBLE_EQ(agg.query(), 4.0);
}

TEST(AnyWindowAggregatorTest, MemoryBytesIsPlumbing) {
  AnyWindowAggregator sum = AnyWindowAggregator::Make(OpKind::kSum, 1024);
  AnyWindowAggregator rng = AnyWindowAggregator::Make(OpKind::kRange, 1024);
  EXPECT_GT(sum.memory_bytes(), 1024 * sizeof(double) / 2);
  EXPECT_GT(rng.memory_bytes(), 0u);
}

// --------------------------- PerQueryAdapter ------------------------------

TEST(PerQueryAdapterTest, MatchesNativeMultiQuery) {
  const std::size_t window = 48;
  std::vector<std::size_t> ranges = {1, 7, 16, 48};
  PerQueryAdapter<window::TwoStacks<ops::MaxInt>> two_stacks(window, ranges);
  PerQueryAdapter<window::Daba<ops::MaxInt>> daba(window, ranges);
  SlickDequeNonInv<ops::MaxInt> native(window);

  util::SplitMix64 rng(5);
  for (int i = 0; i < 300; ++i) {
    const int64_t v = static_cast<int64_t>(rng.NextBounded(10000));
    two_stacks.slide(v);
    daba.slide(v);
    native.slide(v);
    for (std::size_t r : ranges) {
      ASSERT_EQ(two_stacks.query(r), native.query(r)) << "r=" << r;
      ASSERT_EQ(daba.query(r), native.query(r)) << "r=" << r;
    }
  }
}

TEST(PerQueryAdapterTest, MemoryScalesWithSumOfRanges) {
  PerQueryAdapter<window::Daba<ops::Sum>> small(1024, {8});
  PerQueryAdapter<window::Daba<ops::Sum>> large(1024, {8, 512, 1024});
  EXPECT_GT(large.memory_bytes(), small.memory_bytes() + 1024 * sizeof(double));
}

TEST(PerQueryAdapterTest, RejectsUnregisteredRange) {
  PerQueryAdapter<window::Daba<ops::Sum>> adapter(64, {64, 8});
  adapter.slide(1.0);
  EXPECT_DEATH(adapter.query(32), "not registered");
}

}  // namespace
}  // namespace slick::core
