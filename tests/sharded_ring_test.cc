// Tests for the multi-node simulation (RoundRobinSharded) and the
// single-buffer TwoStacksRing.

#include <cstdint>
#include <deque>
#include <string>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "core/slick_deque_inv.h"
#include "core/slick_deque_noninv.h"
#include "core/windowed.h"
#include "engine/sharded.h"
#include "ops/arith.h"
#include "ops/kernels.h"
#include "ops/minmax.h"
#include "ops/string_ops.h"
#include "util/rng.h"
#include "window/naive.h"
#include "window/reference.h"
#include "window/two_stacks_ring.h"

namespace slick {
namespace {

// --------------------------- RoundRobinSharded ---------------------------

template <typename Agg>
void RunShardedOracle(std::size_t window, std::size_t shards, uint64_t seed) {
  using Op = typename Agg::op_type;
  engine::RoundRobinSharded<Agg> sharded(window, shards);
  window::NaiveWindow<Op> single(window);
  util::SplitMix64 rng(seed);
  for (std::size_t i = 0; i < 4 * window + 17; ++i) {
    const auto v = Op::lift(static_cast<typename Op::input_type>(
        static_cast<int64_t>(rng.NextBounded(100000))));
    sharded.slide(v);
    single.slide(v);
    // Exactness holds whenever the total tuple count is a multiple of the
    // shard count (every shard's window covers the same global span).
    if ((i + 1) % shards == 0 && i + 1 >= window) {
      ASSERT_EQ(sharded.query(), single.query())
          << "window=" << window << " shards=" << shards << " i=" << i;
    }
  }
}

class ShardSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};
INSTANTIATE_TEST_SUITE_P(
    Grid, ShardSweep,
    ::testing::Values(std::tuple{8, 2}, std::tuple{8, 4}, std::tuple{8, 8},
                      std::tuple{64, 4}, std::tuple{128, 8},
                      std::tuple{96, 3}, std::tuple{100, 5}),
    [](const auto& tpi) {
      std::string name("w");
      name += std::to_string(std::get<0>(tpi.param));
      name += 's';
      name += std::to_string(std::get<1>(tpi.param));
      return name;
    });

TEST_P(ShardSweep, SumMatchesSingleNode) {
  const auto [w, s] = GetParam();
  RunShardedOracle<core::SlickDequeInv<ops::SumInt>>(w, s, 1);
}
TEST_P(ShardSweep, MaxMatchesSingleNode) {
  const auto [w, s] = GetParam();
  RunShardedOracle<core::SlickDequeNonInv<ops::MaxInt>>(w, s, 2);
}

TEST(ShardedTest, ShardStateScalesDown) {
  engine::RoundRobinSharded<core::SlickDequeInv<ops::Sum>> sharded(1024, 8);
  EXPECT_EQ(sharded.shard_count(), 8u);
  EXPECT_EQ(sharded.shard(0).window_size(), 128u);
  core::SlickDequeInv<ops::Sum> single(1024);
  // Per-shard footprint is ~1/8 of the single-node structure.
  EXPECT_LT(sharded.shard(0).memory_bytes(), single.memory_bytes() / 4);
}

TEST(ShardedTest, InvalidConfigsDie) {
  using Sharded = engine::RoundRobinSharded<core::SlickDequeInv<ops::Sum>>;
  EXPECT_DEATH(Sharded(10, 3), "multiple of the shard count");
  EXPECT_DEATH(Sharded(8, 0), "at least one shard");
}

// Regression for the warm-up bug: query() used to fold shard answers from
// op identity, so a query before every shard had received a tuple either
// combined the selective-op sentinel (-inf for Max) into the answer or
// asserted inside an empty SlickDeque (Non-Inv) shard. The warm-up gate now
// makes that state unreachable, and ready() exposes it.
TEST(ShardedTest, QueryBeforeWarmupDies) {
  engine::RoundRobinSharded<core::SlickDequeNonInv<ops::MaxInt>> sharded(8, 4);
  EXPECT_FALSE(sharded.ready());
  for (int64_t i = 0; i < 3; ++i) sharded.slide(i);  // one shard still empty
  EXPECT_FALSE(sharded.ready());
  EXPECT_DEATH(sharded.query(), "warm");
}

TEST(ShardedTest, ReadyFlipsExactlyAtWindowAndQueryIsConst) {
  engine::RoundRobinSharded<core::SlickDequeNonInv<ops::MaxInt>> sharded(8, 4);
  // All-negative input: a pre-fix identity fold would have seeded the
  // combine with int64 min even when warm.
  for (int64_t i = 0; i < 7; ++i) {
    sharded.slide(-100 - i);
    EXPECT_FALSE(sharded.ready());
  }
  sharded.slide(-50);
  EXPECT_TRUE(sharded.ready());
  const auto& csharded = sharded;  // query() is const-correct now
  EXPECT_EQ(csharded.query(), -50);
  EXPECT_EQ(csharded.shard(0).window_size(), 2u);
}

// --------------------------- TwoStacksRing --------------------------------

template <typename Op>
void RunRingOracle(std::size_t window, uint64_t seed) {
  window::TwoStacksRing<Op> ring(window);
  window::ReferenceAggregator<Op> ref;
  util::SplitMix64 rng(seed);
  for (std::size_t i = 0; i < 5 * window + 23; ++i) {
    if (ring.size() == window) {
      ring.evict();
      ref.evict();
    }
    typename Op::value_type v;
    if constexpr (std::is_same_v<typename Op::input_type, std::string>) {
      v = Op::lift(std::string(1, static_cast<char>('a' + rng.NextBounded(26))));
    } else {
      v = Op::lift(static_cast<typename Op::input_type>(
          static_cast<int64_t>(rng.NextBounded(100000))));
    }
    ring.insert(v);
    ref.insert(v);
    ASSERT_EQ(ring.query(), ref.query()) << "window=" << window << " i=" << i;
  }
}

class RingSweep : public ::testing::TestWithParam<std::size_t> {};
INSTANTIATE_TEST_SUITE_P(Windows, RingSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 17, 64, 100),
                         [](const auto& tpi) {
                           std::string name("w");
                           name += std::to_string(tpi.param);
                           return name;
                         });

TEST_P(RingSweep, SumMatchesOracle) {
  RunRingOracle<ops::SumInt>(GetParam(), 3);
}
TEST_P(RingSweep, MaxMatchesOracle) {
  RunRingOracle<ops::MaxInt>(GetParam(), 4);
}
TEST_P(RingSweep, ConcatKeepsStreamOrder) {
  RunRingOracle<ops::Concat>(GetParam(), 5);
}

// Bulk-path oracle: random BulkInsert batches (bounded by remaining
// capacity) interleaved with random BulkEvicts, driven once with the
// scalar kernels and once with the best detected SIMD level so the
// vectorized carry-scans — including flips whose front region spans the
// ring's wrap seam — are checked against the exact reference.
template <typename Op>
void RunRingBulkOracle(std::size_t window, uint64_t seed) {
  for (const auto level :
       {ops::kernels::SimdLevel::kScalar, ops::kernels::DetectSimdLevel()}) {
    ops::kernels::SetSimdLevel(level);
    window::TwoStacksRing<Op> ring(window);
    window::ReferenceAggregator<Op> ref;
    util::SplitMix64 rng(seed);
    std::vector<typename Op::value_type> batch;
    for (std::size_t step = 0; step < 400; ++step) {
      batch.clear();
      const std::size_t room = window - ring.size();
      const std::size_t m = rng.NextBounded(room + 1);
      for (std::size_t i = 0; i < m; ++i) {
        typename Op::value_type v;
        if constexpr (std::is_same_v<typename Op::input_type, std::string>) {
          v = Op::lift(
              std::string(1, static_cast<char>('a' + rng.NextBounded(26))));
        } else {
          v = Op::lift(static_cast<typename Op::input_type>(
              static_cast<int64_t>(rng.NextBounded(2001)) - 1000));
        }
        batch.push_back(v);
        ref.insert(v);
      }
      ring.BulkInsert(batch.data(), m);
      ASSERT_EQ(ring.size(), ref.size());
      if (ring.size() > 0) {
        ASSERT_EQ(ring.query(), ref.query())
            << "window=" << window << " step=" << step << " m=" << m;
      }
      const std::size_t e = rng.NextBounded(ref.size() + 1);
      ring.BulkEvict(e);
      for (std::size_t i = 0; i < e; ++i) ref.evict();
      ASSERT_EQ(ring.size(), ref.size());
      if (ring.size() > 0) {
        ASSERT_EQ(ring.query(), ref.query())
            << "window=" << window << " step=" << step << " e=" << e;
      }
    }
  }
  ops::kernels::SetSimdLevel(ops::kernels::DetectSimdLevel());
}

TEST_P(RingSweep, BulkSumMatchesOracle) {
  RunRingBulkOracle<ops::SumInt>(GetParam(), 7);
}
TEST_P(RingSweep, BulkMaxMatchesOracle) {
  RunRingBulkOracle<ops::MaxInt>(GetParam(), 8);
}
TEST_P(RingSweep, BulkMinMatchesOracle) {
  RunRingBulkOracle<ops::MinInt>(GetParam(), 9);
}
TEST_P(RingSweep, BulkSumDoubleMatchesOracle) {
  RunRingBulkOracle<ops::Sum>(GetParam(), 10);
}
TEST_P(RingSweep, BulkConcatKeepsStreamOrder) {
  RunRingBulkOracle<ops::Concat>(GetParam(), 11);
}

TEST(TwoStacksRingTest, MemoryIsExactlyCapacity) {
  window::TwoStacksRing<ops::Sum> ring(1024);
  // 2n values: capacity entries of (val, agg).
  EXPECT_EQ(ring.memory_bytes(),
            sizeof(ring) + 1024 * 2 * sizeof(double));
  for (int i = 0; i < 5000; ++i) {
    if (ring.size() == 1024) ring.evict();
    ring.insert(static_cast<double>(i));
  }
  EXPECT_EQ(ring.memory_bytes(), sizeof(ring) + 1024 * 2 * sizeof(double));
}

TEST(TwoStacksRingTest, OverflowDies) {
  window::TwoStacksRing<ops::Sum> ring(2);
  ring.insert(1.0);
  ring.insert(2.0);
  EXPECT_DEATH(ring.insert(3.0), "capacity exceeded");
}

TEST(TwoStacksRingTest, WindowedAdapterWorks) {
  core::Windowed<window::TwoStacksRing<ops::SumInt>> win(16, 16);
  window::NaiveWindow<ops::SumInt> naive(16);
  util::SplitMix64 rng(6);
  for (int i = 0; i < 100; ++i) {
    const int64_t v = static_cast<int64_t>(rng.NextBounded(1000));
    win.slide(v);
    naive.slide(v);
    ASSERT_EQ(win.query(), naive.query());
  }
}

}  // namespace
}  // namespace slick
