// Tests for the parallel runtime's SPSC ring: single-thread semantics
// (FIFO order, wrap-around, bounded capacity, close/drain), and a
// two-thread stress run exercising the blocking/parking paths — the test
// the CI ThreadSanitizer job runs to machine-check the memory ordering.

#include <chrono>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/spsc_ring.h"
#include "util/rng.h"

namespace slick {
namespace {

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(runtime::SpscRing<int>(100).capacity(), 128u);
  EXPECT_EQ(runtime::SpscRing<int>(64).capacity(), 64u);
  EXPECT_EQ(runtime::SpscRing<int>(1).capacity(), 2u);
}

TEST(SpscRingTest, FifoOrderAcrossWraps) {
  runtime::SpscRing<int> ring(8);
  int out[4];
  int next_in = 0, next_out = 0;
  // Interleave pushes and pops so the cursors wrap several times.
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(ring.try_push(next_in));
      ++next_in;
    }
    std::size_t n = ring.try_pop_n(out, 3);
    ASSERT_EQ(n, 3u);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], next_out++);
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRingTest, BoundedAndPartialBatches) {
  runtime::SpscRing<int> ring(8);
  std::vector<int> src(12);
  std::iota(src.begin(), src.end(), 0);
  // try_push_n accepts only what fits — the ring never grows.
  EXPECT_EQ(ring.try_push_n(src.data(), 5), 5u);
  EXPECT_EQ(ring.try_push_n(src.data() + 5, 7), 3u);
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_FALSE(ring.try_push(99));
  int out[16];
  EXPECT_EQ(ring.try_pop_n(out, 16), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(ring.try_pop_n(out, 16), 0u);
}

TEST(SpscRingTest, CloseDrainsThenSignalsShutdown) {
  runtime::SpscRing<int> ring(8);
  ASSERT_TRUE(ring.try_push(1));
  ASSERT_TRUE(ring.try_push(2));
  ring.close();
  EXPECT_TRUE(ring.closed());
  EXPECT_FALSE(ring.try_push(3));  // producer rejected after close
  int out[4];
  // Elements published before close() still drain...
  EXPECT_EQ(ring.pop_n(out, 4), 2u);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 2);
  // ...then the consumer sees the shutdown signal instead of blocking.
  EXPECT_EQ(ring.pop_n(out, 4), 0u);
}

// Producer thread blocking-pushes a known sequence in randomized batch
// sizes through a tiny ring; the consumer verifies strict FIFO order. The
// small capacity forces both sides through the full/empty parking paths.
TEST(SpscRingTest, TwoThreadStressKeepsOrder) {
  constexpr int64_t kCount = 200000;
  runtime::SpscRing<int64_t> ring(64);

  std::thread producer([&ring] {
    util::SplitMix64 rng(7);
    std::vector<int64_t> batch;
    int64_t next = 0;
    while (next < kCount) {
      batch.clear();
      const int64_t n = static_cast<int64_t>(rng.NextBounded(37)) + 1;
      for (int64_t i = 0; i < n && next < kCount; ++i) batch.push_back(next++);
      ASSERT_EQ(ring.push_n(batch.data(), batch.size()), batch.size());
    }
    ring.close();
  });

  int64_t expected = 0;
  int64_t out[97];
  std::size_t n;
  while ((n = ring.pop_n(out, 97)) > 0) {
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], expected++);
  }
  EXPECT_EQ(expected, kCount);
  producer.join();
}

// Two sequential TryClaimPop calls without an intervening ReleasePop must
// return *disjoint* spans. Before the claim cursor existed, both claims
// were computed from head_ and returned the same elements — a consumer
// deferring releases would aggregate every batch twice.
TEST(SpscRingTest, SequentialClaimsAreDisjoint) {
  runtime::SpscRing<int> ring(16);
  std::vector<int> src(8);
  std::iota(src.begin(), src.end(), 0);
  ASSERT_EQ(ring.try_push_n(src.data(), src.size()), src.size());
  std::size_t n1 = 0, n2 = 0;
  int* a = ring.TryClaimPop(4, &n1);
  int* b = ring.TryClaimPop(4, &n2);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(n1, 4u);
  ASSERT_EQ(n2, 4u);
  EXPECT_EQ(b, a + 4);  // second claim starts where the first ended
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(a[i], i);
    EXPECT_EQ(b[i], 4 + i);
  }
  EXPECT_EQ(ring.unconsumed(), 0u);  // everything claimed
  EXPECT_EQ(ring.unreleased(), 8u);  // nothing released
  ring.ReleasePop(8);
  EXPECT_EQ(ring.unreleased(), 0u);
  EXPECT_TRUE(ring.empty());
}

// Regression (close() vs claim-range): a consumer holding an unreleased
// claimed span when the producer closes must still observe the span's
// elements exactly once, and the post-close drain must hand out only the
// *remaining* elements.
TEST(SpscRingTest, CloseWithUnreleasedClaimDrainsExactlyOnce) {
  runtime::SpscRing<int> ring(16);
  std::vector<int> src(10);
  std::iota(src.begin(), src.end(), 0);
  ASSERT_EQ(ring.try_push_n(src.data(), src.size()), src.size());

  // Claim (but do not release) the first batch, as a supervised worker
  // deferring releases to its next checkpoint would.
  std::size_t n1 = 0;
  int* held = ring.TryClaimPop(6, &n1);
  ASSERT_NE(held, nullptr);
  ASSERT_EQ(n1, 6u);

  ring.close();

  // The blocking claim must hand out the remaining 4 elements — not the
  // held span again, and not the shutdown signal while data remains.
  std::size_t n2 = 0;
  int* rest = ring.ClaimPop(16, &n2);
  ASSERT_NE(rest, nullptr);
  ASSERT_EQ(n2, 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(rest[i], 6 + i);

  // Both spans released (out of claim order is fine — releases are a
  // single cursor): only now is the ring drained and the shutdown visible.
  ring.ReleasePop(n1 + n2);
  std::size_t n3 = ~std::size_t{0};
  EXPECT_EQ(ring.ClaimPop(16, &n3), nullptr);
  EXPECT_EQ(n3, 0u);
}

// ResetClaims rewinds the claim cursor to the release cursor, making the
// whole unreleased span claimable again in order — the crash-recovery
// replay primitive.
TEST(SpscRingTest, ResetClaimsReplaysUnreleasedSpan) {
  runtime::SpscRing<int> ring(16);
  std::vector<int> src(12);
  std::iota(src.begin(), src.end(), 0);
  ASSERT_EQ(ring.try_push_n(src.data(), src.size()), src.size());

  // Drain-and-release the first 4 (they are "checkpointed"), then claim
  // 4 more without releasing (the in-flight batch a crash abandons).
  std::size_t n = 0;
  ASSERT_NE(ring.TryClaimPop(4, &n), nullptr);
  ASSERT_EQ(n, 4u);
  ring.ReleasePop(4);
  ASSERT_NE(ring.TryClaimPop(4, &n), nullptr);
  ASSERT_EQ(n, 4u);
  EXPECT_EQ(ring.unreleased(), 4u);
  EXPECT_EQ(ring.unconsumed(), 4u);

  ring.ResetClaims();  // "crash": abandon the claimed batch

  // Replay: the abandoned batch comes back first, in the original order,
  // followed by the never-claimed suffix.
  EXPECT_EQ(ring.unreleased(), 0u);
  EXPECT_EQ(ring.unconsumed(), 8u);
  int out[16];
  EXPECT_EQ(ring.try_pop_n(out, 16), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], 4 + i);
  EXPECT_TRUE(ring.empty());
}

// close() must wake a consumer parked on an empty ring (the shutdown path
// waits on the eventcount, not on the cursors, precisely for this).
TEST(SpscRingTest, CloseWakesParkedConsumer) {
  runtime::SpscRing<int64_t> ring(16);
  std::thread consumer([&ring] {
    int64_t out[4];
    EXPECT_EQ(ring.pop_n(out, 4), 0u);  // parks until close
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ring.close();
  consumer.join();
}

// A producer parked on a full ring must be released by the consumer
// draining (backpressure) and, failing that, by close().
TEST(SpscRingTest, ConsumerReleasesBlockedProducer) {
  runtime::SpscRing<int64_t> ring(8);
  std::vector<int64_t> src(32);
  std::iota(src.begin(), src.end(), 0);
  std::thread producer([&ring, &src] {
    EXPECT_EQ(ring.push_n(src.data(), src.size()), src.size());
  });
  int64_t expected = 0;
  int64_t out[8];
  while (expected < 32) {
    const std::size_t n = ring.pop_n(out, 8);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], expected++);
  }
  producer.join();
}

}  // namespace
}  // namespace slick
