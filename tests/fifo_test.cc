// Oracle-driven validation of the dynamically sized FIFO aggregators:
// TwoStacks, DABA, SubtractOnEvict and MonotonicDeque, under steady sliding,
// growth/shrink phases and randomized insert/evict interleavings. DABA's
// region invariants are additionally brute-force checked after every event.

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "core/monotonic_deque.h"
#include "core/sliding_aggregator.h"
#include "core/subtract_on_evict.h"
#include "ops/kernels.h"
#include "ops/ops.h"
#include "util/rng.h"
#include "window/daba.h"
#include "window/reference.h"
#include "window/two_stacks.h"

namespace slick {
namespace {

using ::slick::core::MonotonicDeque;
using ::slick::core::SubtractOnEvict;
using ::slick::window::Daba;
using ::slick::window::ReferenceAggregator;
using ::slick::window::TwoStacks;

template <typename Op>
typename Op::value_type MakeValue(int64_t v) {
  if constexpr (std::is_same_v<typename Op::input_type, std::string>) {
    return Op::lift(std::string(1, static_cast<char>('a' + ((v % 26) + 26) % 26)));
  } else {
    return Op::lift(static_cast<typename Op::input_type>(v));
  }
}

template <typename Agg>
void MaybeCheckInvariants(const Agg& agg) {
  if constexpr (requires { agg.CheckInvariants(); }) {
    ASSERT_TRUE(agg.CheckInvariants());
  }
}

/// Steady sliding: fill to `window`, then insert+evict for several laps.
template <typename Agg>
void RunSteadyWindow(std::size_t window, uint64_t seed) {
  using Op = typename Agg::op_type;
  Agg agg;
  ReferenceAggregator<Op> ref;
  util::SplitMix64 rng(seed);
  const std::size_t total = 6 * window + 24;
  for (std::size_t i = 0; i < total; ++i) {
    const auto v =
        MakeValue<Op>(static_cast<int64_t>(rng.NextBounded(2001)) - 1000);
    if (agg.size() == window) {
      agg.evict();
      ref.evict();
      MaybeCheckInvariants(agg);
    }
    agg.insert(v);
    ref.insert(v);
    MaybeCheckInvariants(agg);
    ASSERT_EQ(agg.query(), ref.query())
        << "window=" << window << " event=" << i;
    ASSERT_EQ(agg.size(), ref.size());
  }
}

/// Randomized interleaving: grow-biased then shrink-biased phases.
template <typename Agg>
void RunRandomInterleaving(uint64_t seed, std::size_t events = 4000) {
  using Op = typename Agg::op_type;
  Agg agg;
  ReferenceAggregator<Op> ref;
  util::SplitMix64 rng(seed);
  for (std::size_t i = 0; i < events; ++i) {
    // Alternate bias every 500 events so the window both balloons and drains.
    const bool grow_bias = (i / 500) % 2 == 0;
    const uint64_t p = rng.NextBounded(100);
    const bool do_insert = ref.size() == 0 || (grow_bias ? p < 70 : p < 30);
    if (do_insert) {
      const auto v =
          MakeValue<Op>(static_cast<int64_t>(rng.NextBounded(2001)) - 1000);
      agg.insert(v);
      ref.insert(v);
    } else {
      agg.evict();
      ref.evict();
    }
    MaybeCheckInvariants(agg);
    ASSERT_EQ(agg.query(), ref.query()) << "event=" << i;
    ASSERT_EQ(agg.size(), ref.size());
  }
}

/// Randomized bulk batches: BulkInsert/BulkEvict of random sizes against
/// the per-element reference, checked after every batch. Exercises the
/// vectorized flip (partial and full) and the bulk prefix chain at every
/// batch/stack-size remainder, at both the scalar and the widest compiled
/// kernel dispatch level.
template <typename Agg>
void RunBulkBatches(uint64_t seed, std::size_t max_batch = 97) {
  using Op = typename Agg::op_type;
  for (const auto level :
       {ops::kernels::SimdLevel::kScalar, ops::kernels::DetectSimdLevel()}) {
    ops::kernels::SetSimdLevel(level);
    Agg agg;
    ReferenceAggregator<Op> ref;
    util::SplitMix64 rng(seed);
    std::vector<typename Op::value_type> batch;
    for (std::size_t step = 0; step < 300; ++step) {
      batch.clear();
      const std::size_t m = rng.NextBounded(max_batch + 1);
      for (std::size_t i = 0; i < m; ++i) {
        batch.push_back(
            MakeValue<Op>(static_cast<int64_t>(rng.NextBounded(2001)) - 1000));
        ref.insert(batch.back());
      }
      agg.BulkInsert(batch.data(), m);
      ASSERT_EQ(agg.query(), ref.query()) << "step=" << step << " m=" << m;
      const std::size_t e = rng.NextBounded(ref.size() + 1);
      agg.BulkEvict(e);
      for (std::size_t i = 0; i < e; ++i) ref.evict();
      ASSERT_EQ(agg.query(), ref.query()) << "step=" << step << " e=" << e;
      ASSERT_EQ(agg.size(), ref.size());
    }
  }
  ops::kernels::SetSimdLevel(ops::kernels::DetectSimdLevel());
}

/// Drain to empty repeatedly — stresses flip/reset edge cases.
template <typename Agg>
void RunDrainCycles(uint64_t seed) {
  using Op = typename Agg::op_type;
  Agg agg;
  ReferenceAggregator<Op> ref;
  util::SplitMix64 rng(seed);
  for (int cycle = 0; cycle < 12; ++cycle) {
    const std::size_t n = 1 + rng.NextBounded(33);
    for (std::size_t i = 0; i < n; ++i) {
      const auto v =
          MakeValue<Op>(static_cast<int64_t>(rng.NextBounded(2001)) - 1000);
      agg.insert(v);
      ref.insert(v);
      MaybeCheckInvariants(agg);
      ASSERT_EQ(agg.query(), ref.query());
    }
    while (ref.size() > 0) {
      agg.evict();
      ref.evict();
      MaybeCheckInvariants(agg);
      ASSERT_EQ(agg.query(), ref.query());
    }
  }
}

class FifoWindowSweep : public ::testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(Windows, FifoWindowSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 16,
                                           21, 32, 40, 64, 100, 130),
                         [](const auto& tpi) {
                           std::string name("w");
                           name += std::to_string(tpi.param);
                           return name;
                         });

// --------------------------- TwoStacks ------------------------------------

TEST_P(FifoWindowSweep, TwoStacksSum) {
  RunSteadyWindow<TwoStacks<ops::SumInt>>(GetParam(), 1);
}
TEST_P(FifoWindowSweep, TwoStacksMax) {
  RunSteadyWindow<TwoStacks<ops::MaxInt>>(GetParam(), 2);
}
TEST_P(FifoWindowSweep, TwoStacksConcat) {
  RunSteadyWindow<TwoStacks<ops::Concat>>(GetParam(), 3);
}

TEST(TwoStacksTest, RandomInterleaving) {
  RunRandomInterleaving<TwoStacks<ops::SumInt>>(11);
  RunRandomInterleaving<TwoStacks<ops::Concat>>(12);
}
TEST(TwoStacksTest, DrainCycles) { RunDrainCycles<TwoStacks<ops::SumInt>>(13); }
TEST(TwoStacksTest, BulkBatchesMatchReference) {
  RunBulkBatches<TwoStacks<ops::SumInt>>(14);
  RunBulkBatches<TwoStacks<ops::MaxInt>>(15);
  RunBulkBatches<TwoStacks<ops::MinInt>>(16);
  RunBulkBatches<TwoStacks<ops::Sum>>(17);
  RunBulkBatches<TwoStacks<ops::Concat>>(18);  // generic (non-kernel) scans
}

// --------------------------- DABA ------------------------------------------

TEST_P(FifoWindowSweep, DabaSum) {
  RunSteadyWindow<Daba<ops::SumInt>>(GetParam(), 4);
}
TEST_P(FifoWindowSweep, DabaMax) {
  RunSteadyWindow<Daba<ops::MaxInt>>(GetParam(), 5);
}
TEST_P(FifoWindowSweep, DabaConcat) {
  RunSteadyWindow<Daba<ops::Concat>>(GetParam(), 6);
}

TEST(DabaTest, RandomInterleaving) {
  RunRandomInterleaving<Daba<ops::SumInt>>(21);
  RunRandomInterleaving<Daba<ops::Concat>>(22);
}
TEST(DabaTest, DrainCycles) { RunDrainCycles<Daba<ops::SumInt>>(23); }

TEST(DabaTest, SmallChunksExerciseChunkBoundaries) {
  using SmallChunkDaba = Daba<ops::SumInt>;
  SmallChunkDaba agg(/*chunk_capacity=*/2);
  ReferenceAggregator<ops::SumInt> ref;
  util::SplitMix64 rng(31);
  for (int i = 0; i < 3000; ++i) {
    if (ref.size() >= 17) {
      agg.evict();
      ref.evict();
    }
    const int64_t v = static_cast<int64_t>(rng.NextBounded(1000));
    agg.insert(v);
    ref.insert(v);
    ASSERT_TRUE(agg.CheckInvariants());
    ASSERT_EQ(agg.query(), ref.query());
  }
}

// --------------------------- SubtractOnEvict -------------------------------

TEST_P(FifoWindowSweep, SubtractOnEvictSum) {
  RunSteadyWindow<SubtractOnEvict<ops::SumInt>>(GetParam(), 7);
}
TEST(SubtractOnEvictTest, RandomInterleaving) {
  RunRandomInterleaving<SubtractOnEvict<ops::SumInt>>(41);
}
TEST(SubtractOnEvictTest, DrainCycles) {
  RunDrainCycles<SubtractOnEvict<ops::SumInt>>(42);
}
TEST(SubtractOnEvictTest, AverageOp) {
  SubtractOnEvict<ops::Average> agg;
  agg.insert(ops::Average::lift(2.0));
  agg.insert(ops::Average::lift(4.0));
  EXPECT_DOUBLE_EQ(agg.query(), 3.0);
  agg.evict();
  EXPECT_DOUBLE_EQ(agg.query(), 4.0);
}

// --------------------------- MonotonicDeque --------------------------------

TEST_P(FifoWindowSweep, MonotonicDequeMax) {
  RunSteadyWindow<MonotonicDeque<ops::MaxInt>>(GetParam(), 8);
}
TEST(MonotonicDequeTest, RandomInterleaving) {
  RunRandomInterleaving<MonotonicDeque<ops::MaxInt>>(51);
}
TEST(MonotonicDequeTest, DrainCycles) {
  RunDrainCycles<MonotonicDeque<ops::MaxInt>>(52);
}
TEST(MonotonicDequeTest, NodeCountCollapsesOnAscending) {
  MonotonicDeque<ops::MaxInt> agg;
  for (int64_t v = 0; v < 100; ++v) {
    if (agg.size() == 16) agg.evict();
    agg.insert(v);
    EXPECT_EQ(agg.node_count(), 1u);
  }
}
TEST(MonotonicDequeTest, EmptyQueryReturnsIdentity) {
  MonotonicDeque<ops::MaxInt> agg;
  EXPECT_EQ(agg.query(), ops::MaxInt::identity());
}

// --------------------------- Facade dispatch -------------------------------

TEST(SlidingAggregatorTest, DispatchFollowsTraits) {
  static_assert(std::is_same_v<core::FifoAggregatorFor<ops::Sum>,
                               SubtractOnEvict<ops::Sum>>);
  static_assert(std::is_same_v<core::FifoAggregatorFor<ops::Average>,
                               SubtractOnEvict<ops::Average>>);
  static_assert(std::is_same_v<core::FifoAggregatorFor<ops::Max>,
                               MonotonicDeque<ops::Max>>);
  static_assert(std::is_same_v<core::FifoAggregatorFor<ops::AlphaMax>,
                               MonotonicDeque<ops::AlphaMax>>);
  static_assert(
      std::is_same_v<core::FifoAggregatorFor<ops::Concat>, Daba<ops::Concat>>);

  static_assert(std::is_same_v<core::WindowAggregatorFor<ops::Sum>,
                               core::SlickDequeInv<ops::Sum>>);
  static_assert(std::is_same_v<core::WindowAggregatorFor<ops::Max>,
                               core::SlickDequeNonInv<ops::Max>>);
  static_assert(std::is_same_v<core::WindowAggregatorFor<ops::Concat>,
                               core::Windowed<Daba<ops::Concat>>>);
  SUCCEED();
}

TEST(SlidingAggregatorTest, FacadeTypesRunEndToEnd) {
  core::FifoAggregatorFor<ops::Sum> sum;
  core::FifoAggregatorFor<ops::Max> max;
  core::FifoAggregatorFor<ops::Concat> concat;
  for (int i = 1; i <= 5; ++i) {
    sum.insert(ops::Sum::lift(i));
    max.insert(ops::Max::lift(i));
    concat.insert(ops::Concat::lift(std::string(1, static_cast<char>('a' + i))));
  }
  EXPECT_DOUBLE_EQ(sum.query(), 15.0);
  EXPECT_DOUBLE_EQ(max.query(), 5.0);
  EXPECT_EQ(concat.query(), "bcdef");
  sum.evict();
  max.evict();
  concat.evict();
  EXPECT_DOUBLE_EQ(sum.query(), 14.0);
  EXPECT_DOUBLE_EQ(max.query(), 5.0);
  EXPECT_EQ(concat.query(), "cdef");
}

}  // namespace
}  // namespace slick
